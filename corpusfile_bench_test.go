package topmine

// Corpus-file benchmarks guarding the persistent corpus store:
// BenchmarkOpenCorpusFile reports MB/s and allocs for the mmap open
// path, and BenchmarkColdStart puts the two ways of starting a
// training job side by side — re-running ingest+mining+segmentation
// versus Open on the persisted .tpc — which is the measured form of
// the "preprocess once, train many" claim (Open must be ≥10× faster).
// CI runs both with -benchtime=1x as smoke and archives the numbers in
// BENCH_topicmodel.json.
//
//	go test -run '^$' -bench 'CorpusFile|ColdStart' -benchtime 10x .

import (
	"os"
	"path/filepath"
	"testing"
)

func benchCorpusFile(b *testing.B) (path string, docs []string, opt Options) {
	b.Helper()
	docs, err := GenerateExampleCorpus("yelp-reviews", 2000, 42)
	if err != nil {
		b.Fatal(err)
	}
	opt = DefaultOptions()
	opt.Workers = 1
	pre, err := Preprocess(SliceSource(docs), opt)
	if err != nil {
		b.Fatal(err)
	}
	path = filepath.Join(b.TempDir(), "bench.tpc")
	if err := SaveCorpusFile(path, pre); err != nil {
		b.Fatal(err)
	}
	return path, docs, opt
}

func BenchmarkOpenCorpusFile(b *testing.B) {
	path, _, _ := benchCorpusFile(b)
	fi, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("yelp-reviews/mmap", func(b *testing.B) {
		b.SetBytes(fi.Size())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cf, err := OpenCorpusFile(path)
			if err != nil {
				b.Fatal(err)
			}
			if cf.Corpus().NumDocs() != 2000 {
				b.Fatal("short corpus")
			}
			cf.Close()
		}
	})
}

func BenchmarkColdStart(b *testing.B) {
	path, docs, opt := benchCorpusFile(b)
	b.Run("yelp-reviews/reprocess", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Preprocess(SliceSource(docs), opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("yelp-reviews/opencorpusfile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cf, err := OpenCorpusFile(path)
			if err != nil {
				b.Fatal(err)
			}
			cf.Close()
		}
	})
}
