package topmine

// Corpus-file benchmarks guarding the persistent corpus store:
// BenchmarkOpenCorpusFile reports MB/s and allocs for the mmap open
// path, and BenchmarkColdStart puts the two ways of starting a
// training job side by side — re-running ingest+mining+segmentation
// versus Open on the persisted .tpc — which is the measured form of
// the "preprocess once, train many" claim (Open must be ≥10× faster).
// CI runs both with -benchtime=1x as smoke and archives the numbers in
// BENCH_topicmodel.json.
//
//	go test -run '^$' -bench 'CorpusFile|ColdStart' -benchtime 10x .

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func benchCorpusFile(b *testing.B) (path string, docs []string, opt Options) {
	b.Helper()
	docs, err := GenerateExampleCorpus("yelp-reviews", 2000, 42)
	if err != nil {
		b.Fatal(err)
	}
	opt = DefaultOptions()
	opt.Workers = 1
	pre, err := Preprocess(SliceSource(docs), opt)
	if err != nil {
		b.Fatal(err)
	}
	path = filepath.Join(b.TempDir(), "bench.tpc")
	if err := SaveCorpusFile(path, pre); err != nil {
		b.Fatal(err)
	}
	return path, docs, opt
}

func BenchmarkOpenCorpusFile(b *testing.B) {
	path, _, _ := benchCorpusFile(b)
	fi, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("yelp-reviews/mmap", func(b *testing.B) {
		b.SetBytes(fi.Size())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cf, err := OpenCorpusFile(path)
			if err != nil {
				b.Fatal(err)
			}
			if cf.Corpus().NumDocs() != 2000 {
				b.Fatal("short corpus")
			}
			cf.Close()
		}
	})
}

// BenchmarkAppendCorpusFile measures growing a stored 2000-document
// corpus by 500 fresh documents: append cost must scale with the
// appended text (tokenize + intern + one segment write), not with the
// stored corpus. Throughput is relative to the appended raw text.
func BenchmarkAppendCorpusFile(b *testing.B) {
	basePath, _, _ := benchCorpusFile(b)
	baseBytes, err := os.ReadFile(basePath)
	if err != nil {
		b.Fatal(err)
	}
	newDocs, err := GenerateExampleCorpus("yelp-reviews", 500, 99)
	if err != nil {
		b.Fatal(err)
	}
	rawBytes := 0
	for _, d := range newDocs {
		rawBytes += len(d)
	}
	b.Run("yelp-reviews/append500", func(b *testing.B) {
		dir := b.TempDir()
		b.SetBytes(int64(rawBytes))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			path := filepath.Join(dir, fmt.Sprintf("a%d.tpc", i))
			if err := os.WriteFile(path, baseBytes, 0o644); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			stats, err := AppendCorpusFile(path, SliceSource(newDocs), AppendOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if stats.DocsAdded != 500 {
				b.Fatalf("appended %d docs", stats.DocsAdded)
			}
		}
	})
}

// BenchmarkMergeCorpusFiles measures the 3-way merge of independently
// preprocessed shards. Throughput is relative to the combined source
// file size.
func BenchmarkMergeCorpusFiles(b *testing.B) {
	dir := b.TempDir()
	opt := DefaultOptions()
	opt.Workers = 1
	srcs := make([]string, 3)
	var total int64
	for i := range srcs {
		docs, err := GenerateExampleCorpus("yelp-reviews", 700, uint64(100+i))
		if err != nil {
			b.Fatal(err)
		}
		pre, err := Preprocess(SliceSource(docs), opt)
		if err != nil {
			b.Fatal(err)
		}
		srcs[i] = filepath.Join(dir, fmt.Sprintf("shard%d.tpc", i))
		if err := SaveCorpusFile(srcs[i], pre); err != nil {
			b.Fatal(err)
		}
		fi, err := os.Stat(srcs[i])
		if err != nil {
			b.Fatal(err)
		}
		total += fi.Size()
	}
	b.Run("yelp-reviews/merge3x700", func(b *testing.B) {
		b.SetBytes(total)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst := filepath.Join(dir, fmt.Sprintf("merged%d.tpc", i))
			stats, err := MergeCorpusFiles(dst, srcs...)
			if err != nil {
				b.Fatal(err)
			}
			if stats.Docs != 3*700 {
				b.Fatalf("merged %d docs", stats.Docs)
			}
		}
	})
}

func BenchmarkColdStart(b *testing.B) {
	path, docs, opt := benchCorpusFile(b)
	b.Run("yelp-reviews/reprocess", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Preprocess(SliceSource(docs), opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("yelp-reviews/opencorpusfile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cf, err := OpenCorpusFile(path)
			if err != nil {
				b.Fatal(err)
			}
			cf.Close()
		}
	})
}
