package topmine

import (
	"fmt"
	"hash/fnv"
	"sync"

	"topmine/internal/corpus"
	"topmine/internal/segment"
	"topmine/internal/topicmodel"
)

// Inferencer is the serving-side view of a trained pipeline: the
// vocabulary, mined phrase statistics, and frozen topic-word counts of
// a Result (or a loaded snapshot), with the segmenter built once at
// construction instead of once per call.
//
// An Inferencer is safe for concurrent use: every method reads the
// trained artifacts without mutating them, and all randomness lives in
// per-call RNG state seeded deterministically from the pipeline seed
// and a hash of the input text. The same text therefore yields the
// same result on every call, from any number of goroutines.
type Inferencer struct {
	vocab  *Corpus // vocabulary carrier; Docs may be empty (snapshot path)
	seg    *segment.Segmenter
	model  *Model
	opt    Options
	copt   CorpusOptions
	topics []TopicSummary
	// phrases is captured at construction so serving stats never touch
	// the (potentially large) mined counter after startup.
	phrases int
	// scratch pools the per-request working memory of InferTopics —
	// the Gibbs count/assignment/weight buffers and RNG
	// (topicmodel.InferScratch) plus the clique headers and token
	// arena — so a warm inference allocates only the returned mixture
	// and the tokenised document.
	scratch sync.Pool
}

// inferScratch is the pooled per-request working memory.
type inferScratch struct {
	ts      topicmodel.InferScratch
	seg     segment.Workspace
	cliques [][]int32
	words   []int32 // shared arena the clique slices point into
}

// Stats summarises the trained artifacts behind an Inferencer — the
// cheap, precomputed numbers a serving layer exposes per model.
type Stats struct {
	// Topics is K, or 0 for a mining-only pipeline.
	Topics int
	// VocabSize is the number of distinct stems in the vocabulary.
	VocabSize int
	// Phrases is the number of mined frequent phrases (all lengths).
	Phrases int
	// Seed is the pipeline seed the per-call RNG streams derive from.
	Seed uint64
}

// NewInferencer builds an Inferencer from a pipeline Result. The
// Result must carry a corpus (for its vocabulary) and mined phrase
// statistics; Segmented is not required, so snapshot-loaded Results
// qualify. A Result without a trained Model (a mining-only pipeline)
// still supports Segment and TraceText — only InferTopics needs the
// model. The Inferencer captures the Result's artifacts at
// construction; populate every field before the first use.
func NewInferencer(r *Result) (*Inferencer, error) {
	switch {
	case r == nil:
		return nil, fmt.Errorf("topmine: NewInferencer: nil Result")
	case r.Corpus == nil || r.Corpus.Vocab == nil:
		return nil, fmt.Errorf("topmine: NewInferencer: Result has no corpus vocabulary")
	case r.Mined == nil:
		return nil, fmt.Errorf("topmine: NewInferencer: Result has no mined phrases")
	}
	// Normalise unseen text exactly as the training corpus was built.
	// Corpora constructed by BuildCorpus/LoadCorpus* record their
	// options (and snapshots persist them); callers hand-assembling a
	// Corpus literal must set BuildOpts themselves — the zero value
	// legitimately means no stemming and no stop-word removal.
	inf := &Inferencer{
		vocab: r.Corpus,
		seg: segment.NewSegmenter(r.Mined, segment.Options{
			Alpha:        r.Options.SigThreshold,
			MaxPhraseLen: r.Options.MaxPhraseLen,
			Workers:      1,
		}),
		model:   r.Model,
		opt:     r.Options,
		copt:    r.Corpus.BuildOpts,
		topics:  r.Topics,
		phrases: r.Mined.Counts.Len(),
	}
	inf.scratch.New = func() any { return new(inferScratch) }
	return inf, nil
}

// Stats returns the precomputed model summary; it never allocates and
// is safe to call on every request.
func (inf *Inferencer) Stats() Stats {
	return Stats{
		Topics:    inf.NumTopics(),
		VocabSize: inf.vocab.Vocab.Size(),
		Phrases:   inf.phrases,
		Seed:      inf.opt.Seed,
	}
}

// NumTopics returns K, the number of topics of the underlying model,
// or 0 when the source Result carried no trained model.
func (inf *Inferencer) NumTopics() int {
	if inf.model == nil {
		return 0
	}
	return inf.model.K
}

// Topics returns the rendered topic summaries captured at training
// time (nil when the source Result carried none). The slice is shared;
// callers must not mutate it.
func (inf *Inferencer) Topics() []TopicSummary { return inf.topics }

// callSeed derives the per-call RNG seed: the pipeline seed mixed with
// an FNV-1a hash of the text, so distinct texts draw from independent
// streams while repeated calls with the same text are bit-identical.
func (inf *Inferencer) callSeed(text string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(text))
	return inf.opt.Seed ^ h.Sum64() ^ 0x1f2e3d
}

// cliquesInto maps a document's segments through the segmenter into
// phrase cliques — the unit the topic model samples — writing into
// sc's reusable buffers. The
// clique slices point into sc.words (or, if that arena grows mid-
// build, a superseded backing array that stays alive with them), so
// they are valid until the scratch's next use.
func (inf *Inferencer) cliquesInto(doc *corpus.Document, sc *inferScratch) [][]int32 {
	cliques := sc.cliques[:0]
	arena := sc.words[:0]
	for si := range doc.Segments {
		words := doc.Segments[si].Words()
		for _, sp := range inf.seg.PartitionWith(words, &sc.seg) {
			start := len(arena)
			arena = append(arena, words[sp.Start:sp.End]...)
			cliques = append(cliques, arena[start:len(arena):len(arena)])
		}
	}
	sc.cliques, sc.words = cliques, arena
	return cliques
}

// InferTopics folds unseen raw text into the trained model: the text
// is tokenized against the existing vocabulary (out-of-vocabulary
// words dropped), segmented into phrases with the mined statistics,
// and Gibbs-sampled against the frozen topic-word counts. It returns
// the inferred topic mixture and never modifies the model. It panics
// when the source Result carried no trained model.
//
// Note that iters counts sampling sweeps; the model runs an equal
// burn-in first, so one call costs 2×iters sweeps (see
// Model.InferTheta).
func (inf *Inferencer) InferTopics(text string, iters int) []float64 {
	theta, _ := inf.InferTopicsTokens(text, iters)
	return theta
}

// InferTopicsTokens is InferTopics plus the number of in-vocabulary
// tokens the text mapped to. A zero count means every word was
// out-of-vocabulary (or the text was empty): the returned mixture is
// the bare Dirichlet prior, and its argmax carries no signal — callers
// surfacing a "best topic" should treat tokens==0 as "no answer"
// rather than a confident topic 0.
func (inf *Inferencer) InferTopicsTokens(text string, iters int) ([]float64, int) {
	if inf.model == nil {
		panic("topmine: InferTopics requires a trained model; this Inferencer was built from a mining-only Result")
	}
	doc := corpus.MapText(text, inf.vocab.Vocab, inf.copt)
	tokens := 0
	for si := range doc.Segments {
		tokens += doc.Segments[si].Len()
	}
	sc := inf.scratch.Get().(*inferScratch)
	cliques := inf.cliquesInto(doc, sc)
	theta := inf.model.InferThetaScratch(cliques, iters, inf.callSeed(text), &sc.ts)
	inf.scratch.Put(sc)
	return theta, tokens
}

// Segment partitions unseen raw text into phrases with the mined
// statistics: one string slice per punctuation-delimited segment, each
// element a display-form phrase.
func (inf *Inferencer) Segment(text string) [][]string {
	doc := corpus.MapText(text, inf.vocab.Vocab, inf.copt)
	out := make([][]string, 0, len(doc.Segments))
	for si := range doc.Segments {
		words := doc.Segments[si].Words()
		spans := inf.seg.Partition(words)
		phrases := make([]string, len(spans))
		for i, sp := range spans {
			phrases[i] = inf.vocab.DisplayWords(words[sp.Start:sp.End])
		}
		out = append(out, phrases)
	}
	return out
}

// TraceText segments unseen text with the mined statistics and records
// every merge, per segment — the serving-path equivalent of
// Result.TraceText.
func (inf *Inferencer) TraceText(text string) []SegmentTrace {
	doc := corpus.MapText(text, inf.vocab.Vocab, inf.copt)
	var out []SegmentTrace
	for si := range doc.Segments {
		words := doc.Segments[si].Words()
		spans, steps := inf.seg.TracePartition(words)
		tr := SegmentTrace{Steps: steps}
		for _, w := range words {
			tr.Tokens = append(tr.Tokens, inf.vocab.Vocab.Unstem(w))
		}
		for _, sp := range spans {
			tr.Phrases = append(tr.Phrases, inf.vocab.DisplayWords(words[sp.Start:sp.End]))
		}
		out = append(out, tr)
	}
	return out
}
