package topmine

import (
	"math"
	"strings"
	"testing"
)

// trainedResult builds a small trained pipeline for inference tests.
func trainedResult(t *testing.T) *Result {
	t.Helper()
	docs, err := GenerateExampleCorpus("20conf", 600, 21)
	if err != nil {
		t.Fatal(err)
	}
	opt := smallOpts()
	opt.Iterations = 80
	res, err := Run(docs, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestInferTopicsReturnsDistribution(t *testing.T) {
	res := trainedResult(t)
	theta := res.InferTopics("support vector machines for text classification", 30)
	if len(theta) != res.Options.Topics {
		t.Fatalf("theta len = %d, want %d", len(theta), res.Options.Topics)
	}
	var sum float64
	for _, v := range theta {
		if v < 0 {
			t.Fatalf("negative component %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("theta sums to %v", sum)
	}
}

func TestInferTopicsDiscriminates(t *testing.T) {
	res := trainedResult(t)
	// Two texts from clearly different planted topics should usually
	// land on different argmax topics.
	a := res.InferTopics("support vector machines and neural network training with feature selection and machine learning", 50)
	b := res.InferTopics("query processing in database systems with query optimization and concurrency control", 50)
	ka, kb := BestTopic(a), BestTopic(b)
	if ka == kb {
		t.Fatalf("ML text and DB text inferred the same topic %d (theta %v vs %v)", ka, a, b)
	}
}

func TestInferTopicsDeterministic(t *testing.T) {
	res := trainedResult(t)
	x := res.InferTopics("machine learning models", 20)
	y := res.InferTopics("machine learning models", 20)
	for i := range x {
		if x[i] != y[i] {
			t.Fatal("inference not deterministic")
		}
	}
}

func TestInferTopicsAllOOV(t *testing.T) {
	res := trainedResult(t)
	theta := res.InferTopics("zzzzz qqqqq xxxxx", 10)
	// No evidence: should return (roughly) the prior, still normalised.
	var sum float64
	for _, v := range theta {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("all-OOV theta sums to %v", sum)
	}
}

func TestInferTopicsEmptyText(t *testing.T) {
	res := trainedResult(t)
	theta := res.InferTopics("", 10)
	if len(theta) != res.Options.Topics {
		t.Fatal("empty text should still yield a mixture")
	}
}

func TestTraceTextRecordsMerges(t *testing.T) {
	res := trainedResult(t)
	traces := res.TraceText("support vector machines classify documents")
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(traces))
	}
	tr := traces[0]
	if len(tr.Tokens) == 0 || len(tr.Phrases) == 0 {
		t.Fatalf("empty trace: %+v", tr)
	}
	// Token count conservation: phrases partition the tokens.
	total := 0
	for _, p := range tr.Phrases {
		total += len(strings.Fields(p))
	}
	if total != len(tr.Tokens) {
		t.Fatalf("phrases cover %d tokens of %d", total, len(tr.Tokens))
	}
	// Every merge must meet the significance threshold, and merged
	// spans must be consistent.
	for _, s := range tr.Steps {
		if s.Sig < res.Options.SigThreshold {
			t.Fatalf("merge below threshold: %+v", s)
		}
		if s.Left.End != s.Right.Start || s.Merged.Start != s.Left.Start || s.Merged.End != s.Right.End {
			t.Fatalf("inconsistent merge spans: %+v", s)
		}
	}
	// "support vector machines" should have merged: expect at least one
	// step and a multi-word phrase.
	if len(tr.Steps) == 0 {
		t.Fatal("no merges recorded for a segment containing a planted trigram")
	}
	multi := false
	for _, p := range tr.Phrases {
		if strings.Contains(p, " ") {
			multi = true
		}
	}
	if !multi {
		t.Fatalf("no multi-word phrase in %v", tr.Phrases)
	}
}

func TestTraceTextStepsDescendBySignificance(t *testing.T) {
	res := trainedResult(t)
	traces := res.TraceText("support vector machines for machine learning")
	for _, tr := range traces {
		for i := 1; i < len(tr.Steps); i++ {
			// Execution order is highest-significance-first among the
			// *available* candidates; scores of later merges can exceed
			// earlier ones only when created by a merge. Verify scores
			// are finite and above threshold instead of strict order.
			if math.IsNaN(tr.Steps[i].Sig) {
				t.Fatal("NaN significance in trace")
			}
		}
	}
}

func TestSelectTopics(t *testing.T) {
	docs, _ := GenerateExampleCorpus("20conf", 500, 23)
	c := BuildCorpus(docs, DefaultCorpusOptions())
	opt := smallOpts()
	opt.Iterations = 40
	sel, err := SelectTopics(c, []int{2, 5, 30}, opt, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.K) != 3 || len(sel.Perplexity) != 3 {
		t.Fatalf("selection incomplete: %+v", sel)
	}
	for _, p := range sel.Perplexity {
		if math.IsNaN(p) || p <= 1 {
			t.Fatalf("bad perplexity %v", p)
		}
	}
	found := false
	for _, k := range sel.K {
		if k == sel.BestK {
			found = true
		}
	}
	if !found {
		t.Fatalf("BestK %d not among candidates", sel.BestK)
	}
}

func TestSelectTopicsRejectsBadOptions(t *testing.T) {
	docs, _ := GenerateExampleCorpus("20conf", 50, 23)
	c := BuildCorpus(docs, DefaultCorpusOptions())
	if _, err := SelectTopics(c, nil, Options{}, 0.2); err == nil {
		t.Fatal("bad options accepted (no candidates, no Topics)")
	}
}
