module topmine

go 1.24
