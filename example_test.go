package topmine_test

import (
	"fmt"

	"topmine"
)

// The runnable documentation examples below double as regression tests
// (go test verifies their output).

func ExampleRun() {
	docs := []string{
		"Mining frequent patterns without candidate generation.",
		"Frequent pattern mining: current status and future directions.",
		"Efficient frequent pattern mining in large databases.",
		"Frequent pattern mining over data streams.",
		"Parallel frequent pattern mining at scale.",
	}
	opt := topmine.DefaultOptions()
	opt.Topics = 1
	opt.Iterations = 50
	opt.MinSupport = 3
	opt.SigThreshold = 1.5
	opt.Seed = 1

	res, err := topmine.Run(docs, opt)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	top := res.FrequentPhrases(2)[0]
	fmt.Printf("%s (count %d)\n", res.PhraseString(top), top.Count)
	// Output:
	// frequent pattern (count 5)
}

func ExampleBuildCorpus() {
	c := topmine.BuildCorpus([]string{
		"The house and senate passed the bill.",
	}, topmine.DefaultCorpusOptions())
	st := c.ComputeStats()
	fmt.Println(st.Docs, "doc,", st.Tokens, "content tokens")
	// Stop words are removed for mining but re-inserted for display.
	seg := &c.Docs[0].Segments[0]
	fmt.Println(c.DisplayPhrase(seg, 0, 2))
	// Output:
	// 1 doc, 4 content tokens
	// house and senate
}

func ExampleGenerateExampleCorpus() {
	docs, err := topmine.GenerateExampleCorpus("yelp-reviews", 3, 7)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(len(docs), "synthetic reviews generated")
	// Output:
	// 3 synthetic reviews generated
}

func ExampleResult_InferTopics() {
	train, _ := topmine.GenerateExampleCorpus("20conf", 400, 3)
	opt := topmine.DefaultOptions()
	opt.Topics = 5
	opt.Iterations = 60
	opt.Seed = 3
	res, err := topmine.Run(train, opt)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	theta := res.InferTopics("support vector machines for classification", 30)
	fmt.Println(len(theta) == 5)
	// Output:
	// true
}
