// news runs ToPMine on long-form news articles (the AP News scenario
// behind Table 5), demonstrating the background-phrase filter (§8 of
// the paper) and model persistence.
//
//	go run ./examples/news -docs 800 -k 5
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"topmine"
)

func main() {
	docs := flag.Int("docs", 800, "number of articles to generate")
	k := flag.Int("k", 5, "number of topics")
	iters := flag.Int("iters", 200, "Gibbs iterations")
	seed := flag.Uint64("seed", 7, "random seed")
	save := flag.String("save", "", "optional path to save the trained model (gob)")
	flag.Parse()

	articles, err := topmine.GenerateExampleCorpus("ap-news", *docs, *seed)
	if err != nil {
		log.Fatal(err)
	}

	opt := topmine.DefaultOptions()
	opt.Topics = *k
	opt.Iterations = *iters
	opt.Seed = *seed
	opt.MinSupport = 8 // long documents: raise the support floor

	res, err := topmine.Run(articles, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Topics without background filtering ==")
	fmt.Print(topmine.FormatTopics(res.Topics))

	fmt.Println("\n== Corpus-wide background phrases the §8 filter flags ==")
	for _, p := range res.Model.BackgroundPhrases(res.Corpus, 0.5, 8) {
		fmt.Printf("  %-35s total tf=%d\n", p.Display, p.TF)
	}

	fmt.Println("\n== Topics with background filtering ==")
	filtered := res.Model.Visualize(res.Corpus, topmine.VisualizeOptions{
		FilterBackground: true, BackgroundMaxShare: 0.5,
	})
	fmt.Print(topmine.FormatTopics(filtered))

	if *save != "" {
		if err := os.MkdirAll(filepath.Dir(*save), 0o755); err != nil && filepath.Dir(*save) != "." {
			log.Fatal(err)
		}
		if err := res.Model.SaveFile(*save); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nmodel saved to %s\n", *save)
	}
}
