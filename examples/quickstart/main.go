// Quickstart: mine topical phrases from a handful of documents with
// one call. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"topmine"
)

func main() {
	// A miniature corpus: computer-science paper titles. Real usage
	// would load one document per line via topmine.LoadCorpusFile.
	docs := []string{
		"Mining frequent patterns without candidate generation: a frequent pattern tree approach.",
		"Frequent pattern mining: current status and future directions.",
		"Fast algorithms for mining association rules in large databases.",
		"Mining association rules between sets of items in large databases.",
		"Efficient frequent pattern mining over data streams.",
		"Support vector machines for text classification.",
		"Text classification using support vector machines and kernels.",
		"Training support vector machines in linear time.",
		"A tutorial on support vector machines for pattern recognition.",
		"Large margin classification with support vector machines.",
		"Latent dirichlet allocation for topic models.",
		"Topic models for information retrieval.",
		"Probabilistic topic models of text corpora.",
		"Evaluating topic models for digital libraries.",
		"Dynamic topic models for streaming documents.",
	}

	opt := topmine.DefaultOptions()
	opt.Topics = 3
	opt.Iterations = 200
	opt.MinSupport = 3 // tiny corpus: lower the support floor
	opt.SigThreshold = 2
	opt.Seed = 1

	res, err := topmine.Run(docs, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Frequent multi-word phrases (Algorithm 1) ==")
	for _, p := range res.FrequentPhrases(2) {
		fmt.Printf("  %-40s %d\n", res.PhraseString(p), p.Count)
	}

	fmt.Println("\n== Topics (PhraseLDA, topical-frequency ranking) ==")
	fmt.Print(topmine.FormatTopics(res.Topics))
}
