// dblp_titles reproduces the paper's headline use case — topical
// phrases from computer-science paper titles (the DBLP titles / 20Conf
// datasets behind Table 1) — on a synthetic stand-in corpus.
//
//	go run ./examples/dblp_titles -docs 5000 -k 5
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"topmine"
)

func main() {
	docs := flag.Int("docs", 5000, "number of titles to generate")
	k := flag.Int("k", 5, "number of topics")
	iters := flag.Int("iters", 300, "Gibbs iterations")
	seed := flag.Uint64("seed", 42, "random seed")
	flag.Parse()

	titles, err := topmine.GenerateExampleCorpus("20conf", *docs, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d synthetic titles (e.g. %q)\n\n", len(titles), titles[0])

	opt := topmine.DefaultOptions()
	opt.Topics = *k
	opt.Iterations = *iters
	opt.Seed = *seed

	start := time.Now()
	c := topmine.BuildCorpus(titles, topmine.DefaultCorpusOptions())
	fmt.Printf("corpus: %v (built in %v)\n", c.ComputeStats(), time.Since(start).Round(time.Millisecond))

	t0 := time.Now()
	mined := topmine.MinePhrases(c, opt)
	tMine := time.Since(t0)
	t0 = time.Now()
	segs := topmine.SegmentCorpus(c, mined, opt)
	tSeg := time.Since(t0)
	t0 = time.Now()
	model := topmine.TrainModel(c, segs, opt)
	tTopic := time.Since(t0)

	fmt.Printf("phrase mining:   %8v  (%d frequent phrases, longest %d words)\n",
		tMine.Round(time.Millisecond), mined.Counts.Len(), mined.MaxPhraseLen)
	fmt.Printf("segmentation:    %8v\n", tSeg.Round(time.Millisecond))
	fmt.Printf("topic modeling:  %8v  (the dominant cost, as in Fig. 8)\n\n",
		tTopic.Round(time.Millisecond))

	sums := model.Visualize(c, topmine.VisualizeOptions{TopUnigrams: 10, TopPhrases: 10})
	fmt.Println(topmine.FormatTopics(sums))
}
