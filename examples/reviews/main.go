// reviews reproduces the Figure 6 experiment at example scale: on
// review text, PhraseLDA's held-out perplexity tracks (and typically
// beats) plain LDA's, evaluated by document completion as the Gibbs
// chain progresses.
//
//	go run ./examples/reviews -docs 600 -k 10 -iters 150
package main

import (
	"flag"
	"fmt"
	"log"

	"topmine"
)

func main() {
	docs := flag.Int("docs", 600, "number of reviews to generate")
	k := flag.Int("k", 10, "number of topics")
	iters := flag.Int("iters", 150, "Gibbs iterations")
	seed := flag.Uint64("seed", 11, "random seed")
	flag.Parse()

	reviews, err := topmine.GenerateExampleCorpus("yelp-reviews", *docs, *seed)
	if err != nil {
		log.Fatal(err)
	}

	c := topmine.BuildCorpus(reviews, topmine.DefaultCorpusOptions())
	ho := topmine.SplitHeldOut(c, 0.2)
	fmt.Printf("corpus: %v; held out %d tokens\n\n", c.ComputeStats(), ho.TestTokens)

	opt := topmine.DefaultOptions()
	opt.Topics = *k
	opt.Iterations = *iters
	opt.Seed = *seed
	opt.OptimizeHyper = false // match the paper's timed configuration

	mined := topmine.MinePhrases(ho.Train, opt)
	segs := topmine.SegmentCorpus(ho.Train, mined, opt)

	fmt.Println("iter   PhraseLDA-ppl   LDA-ppl")
	every := *iters / 10
	if every == 0 {
		every = 1
	}
	curve := map[int][2]float64{}
	optP := opt
	optP.Iterations = *iters
	pModel := topmine.TrainModelWithCallback(ho.Train, segs, optP, func(it int, m *topmine.Model) {
		if it%every == 0 {
			v := curve[it]
			v[0] = topmine.Perplexity(m, ho)
			curve[it] = v
		}
	})
	lModel := topmine.TrainLDAWithCallback(ho.Train, optP, func(it int, m *topmine.Model) {
		if it%every == 0 {
			v := curve[it]
			v[1] = topmine.Perplexity(m, ho)
			curve[it] = v
		}
	})
	_, _ = pModel, lModel
	for it := every; it <= *iters; it += every {
		v := curve[it]
		fmt.Printf("%4d   %12.1f   %8.1f\n", it, v[0], v[1])
	}
	fmt.Println("\nExpected shape (paper Fig. 6): PhraseLDA at or below LDA on reviews.")
}
