// dendrogram reproduces the paper's Figure 1: the bottom-up
// agglomerative construction of a bag of phrases on the title "Markov
// blanket feature selection for support vector machines", rendered as
// the sequence of merges with their significance scores.
//
//	go run ./examples/dendrogram
package main

import (
	"fmt"
	"log"
	"strings"

	"topmine"
)

func main() {
	// Background corpus supplying the aggregate counts that drive the
	// significance score — synthetic CS titles plus extra occurrences
	// of the Figure 1 collocations.
	docs, err := topmine.GenerateExampleCorpus("20conf", 3000, 3)
	if err != nil {
		log.Fatal(err)
	}
	extra := []string{
		"markov blanket discovery in bayesian networks",
		"learning the markov blanket structure",
		"markov blanket feature selection methods",
		"feature selection for high dimensional data",
		"embedded feature selection approaches",
		"feature selection with sparsity",
	}
	for i := 0; i < 12; i++ {
		docs = append(docs, extra...)
	}

	opt := topmine.DefaultOptions()
	opt.Topics = 5
	opt.Iterations = 50 // the trace only needs mined counts
	opt.SigThreshold = 5
	opt.Seed = 3
	res, err := topmine.Run(docs, opt)
	if err != nil {
		log.Fatal(err)
	}

	title := "Markov Blanket Feature Selection for Support Vector Machines"
	fmt.Printf("title: %s\nsignificance threshold alpha = %.0f\n\n", title, opt.SigThreshold)
	for _, tr := range res.TraceText(title) {
		fmt.Printf("tokens (stop words removed): %s\n\n", strings.Join(tr.Tokens, " | "))
		for i, s := range tr.Steps {
			merged := strings.Join(tr.Tokens[s.Merged.Start:s.Merged.End], " ")
			fmt.Printf("iteration %d: merge [%s] + [%s] -> [%s]   sig = %.1f\n",
				i+1,
				strings.Join(tr.Tokens[s.Left.Start:s.Left.End], " "),
				strings.Join(tr.Tokens[s.Right.Start:s.Right.End], " "),
				merged, s.Sig)
		}
		fmt.Printf("\nmerging terminates (no remaining candidate reaches alpha)\n\nfinal bag of phrases:\n")
		for _, p := range tr.Phrases {
			fmt.Printf("  (%s)\n", p)
		}
	}
	fmt.Println("\nPaper's Figure 1 result: (Markov Blanket) (Feature Selection) (for)")
	fmt.Println("(Support Vector Machines) — 'for' is a stop word removed before mining")
	fmt.Println("here, re-inserted on display.")
}
