package topmine

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestNewInferencerValidates(t *testing.T) {
	if _, err := NewInferencer(nil); err == nil {
		t.Fatal("nil Result accepted")
	}
	if _, err := NewInferencer(&Result{}); err == nil {
		t.Fatal("empty Result accepted")
	}
}

// TestMiningOnlyResultTracesAndSegments pins that a pipeline without
// a trained topic model (mine + segment only) still supports
// TraceText and Segment — they need only the vocabulary and mined
// statistics — while InferTopics fails loudly.
func TestMiningOnlyResultTracesAndSegments(t *testing.T) {
	docs, err := GenerateExampleCorpus("20conf", 400, 21)
	if err != nil {
		t.Fatal(err)
	}
	opt := smallOpts()
	c := BuildCorpus(docs, DefaultCorpusOptions())
	res := &Result{Corpus: c, Mined: MinePhrases(c, opt), Options: opt}

	traces := res.TraceText("support vector machines classify documents")
	if len(traces) != 1 || len(traces[0].Phrases) == 0 {
		t.Fatalf("mining-only TraceText broken: %+v", traces)
	}
	inf, err := res.Inferencer()
	if err != nil {
		t.Fatalf("mining-only Inferencer refused: %v", err)
	}
	if inf.NumTopics() != 0 {
		t.Fatalf("NumTopics = %d for model-less inferencer", inf.NumTopics())
	}
	if segs := inf.Segment("support vector machines"); len(segs) == 0 {
		t.Fatal("mining-only Segment returned nothing")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("InferTopics without a model did not panic")
		}
	}()
	res.InferTopics("support vector machines", 5)
}

func TestResultInferencerCached(t *testing.T) {
	res := trainedResult(t)
	a, err := res.Inferencer()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := res.Inferencer()
	if a != b {
		t.Fatal("Result.Inferencer rebuilt instead of caching")
	}
}

// TestResultInferencerErrorNotCached pins that a failed construction
// (incomplete Result) does not poison later calls once the Result is
// completed.
func TestResultInferencerErrorNotCached(t *testing.T) {
	res := trainedResult(t)
	partial := &Result{Corpus: res.Corpus, Options: res.Options} // Mined missing
	if _, err := partial.Inferencer(); err == nil {
		t.Fatal("incomplete Result accepted")
	}
	partial.Mined = res.Mined
	partial.Model = res.Model
	if _, err := partial.Inferencer(); err != nil {
		t.Fatalf("completed Result still rejected: %v", err)
	}
}

func TestInferencerMatchesResultPaths(t *testing.T) {
	res := trainedResult(t)
	inf, err := res.Inferencer()
	if err != nil {
		t.Fatal(err)
	}
	for _, text := range inferTexts {
		want := res.InferTopics(text, 25)
		got := inf.InferTopics(text, 25)
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("%q: Inferencer theta[%d] = %v, Result path %v", text, k, got[k], want[k])
			}
		}
	}
}

func TestInferencerSegmentPartitionsTokens(t *testing.T) {
	res := trainedResult(t)
	inf, err := res.Inferencer()
	if err != nil {
		t.Fatal(err)
	}
	segs := inf.Segment("support vector machines classify documents, query processing in database systems")
	if len(segs) != 2 {
		t.Fatalf("segments = %d, want 2 (comma splits)", len(segs))
	}
	// Each segment's phrases concatenate back to its tokens, and the
	// planted trigram should have merged somewhere.
	multi := false
	for _, phrases := range segs {
		if len(phrases) == 0 {
			t.Fatal("empty phrase list for a non-empty segment")
		}
		for _, p := range phrases {
			if strings.Contains(p, " ") {
				multi = true
			}
		}
	}
	if !multi {
		t.Fatalf("no multi-word phrase constructed: %v", segs)
	}
	if got := inf.Segment("zzzzz qqqqq"); len(got) != 0 {
		t.Fatalf("all-OOV text produced segments: %v", got)
	}
}

// TestInferencerHonorsAllFalseBuildOptions pins the zero-value
// semantics: a corpus explicitly built with no stemming and no
// stop-word removal must map query text the same way — substituting
// the defaults would stem queries against an unstemmed vocabulary and
// drop every token as OOV.
func TestInferencerHonorsAllFalseBuildOptions(t *testing.T) {
	docs, err := GenerateExampleCorpus("20conf", 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	opt := smallOpts()
	opt.Iterations = 30
	res, err := RunCorpus(BuildCorpus(docs, CorpusOptions{}), opt)
	if err != nil {
		t.Fatal(err)
	}
	inf, err := res.Inferencer()
	if err != nil {
		t.Fatal(err)
	}
	// "machines" is plural in the raw text; with stemming off the
	// vocabulary holds the surface form, so the query token must map.
	segs := inf.Segment("support vector machines")
	if len(segs) == 0 {
		t.Fatal("query text against an unstemmed corpus mapped to nothing (defaults substituted for all-false BuildOptions?)")
	}
}

// fingerprintTheta renders a mixture exactly for equality comparison.
func fingerprintTheta(theta []float64) string {
	var b strings.Builder
	for _, v := range theta {
		fmt.Fprintf(&b, "%x;", v)
	}
	return b.String()
}

func fingerprintSegs(segs [][]string) string {
	var b strings.Builder
	for _, s := range segs {
		b.WriteString(strings.Join(s, "|"))
		b.WriteString("//")
	}
	return b.String()
}

func fingerprintTraces(trs []SegmentTrace) string {
	var b strings.Builder
	for _, tr := range trs {
		b.WriteString(strings.Join(tr.Tokens, ","))
		b.WriteString("!")
		b.WriteString(strings.Join(tr.Phrases, "|"))
		for _, s := range tr.Steps {
			fmt.Fprintf(&b, "[%d,%d,%d,%x]", s.Merged.Start, s.Merged.End, s.Left.End, s.Sig)
		}
		b.WriteString("//")
	}
	return b.String()
}

// TestInferencerConcurrentDeterministic hammers one Inferencer from
// many goroutines with mixed InferTopics/Segment/TraceText calls and
// asserts every call reproduces the serially-computed answer exactly.
// Run under -race this also proves the shared segmenter, model, and
// vocabulary are touched read-only.
func TestInferencerConcurrentDeterministic(t *testing.T) {
	res := trainedResult(t)

	// Serve from a snapshot round trip, as topmined does, so the test
	// covers the production path end to end.
	var buf bytes.Buffer
	if err := SaveSnapshot(&buf, res); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	inf, err := loaded.Inferencer()
	if err != nil {
		t.Fatal(err)
	}

	texts := []string{
		"support vector machines for text classification",
		"query processing in database systems",
		"machine learning models, neural network training and feature selection",
		"information retrieval and web search",
		"zzzzz out of vocabulary text qqqqq",
	}
	const iters = 15
	wantTheta := make([]string, len(texts))
	wantSegs := make([]string, len(texts))
	wantTrace := make([]string, len(texts))
	for i, text := range texts {
		wantTheta[i] = fingerprintTheta(inf.InferTopics(text, iters))
		wantSegs[i] = fingerprintSegs(inf.Segment(text))
		wantTrace[i] = fingerprintTraces(inf.TraceText(text))
	}

	const goroutines = 8
	const opsPerGoroutine = 24
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for op := 0; op < opsPerGoroutine; op++ {
				i := (g + op) % len(texts)
				switch (g + op) % 3 {
				case 0:
					if got := fingerprintTheta(inf.InferTopics(texts[i], iters)); got != wantTheta[i] {
						t.Errorf("goroutine %d: InferTopics(%q) diverged", g, texts[i])
						return
					}
				case 1:
					if got := fingerprintSegs(inf.Segment(texts[i])); got != wantSegs[i] {
						t.Errorf("goroutine %d: Segment(%q) diverged", g, texts[i])
						return
					}
				default:
					if got := fingerprintTraces(inf.TraceText(texts[i])); got != wantTrace[i] {
						t.Errorf("goroutine %d: TraceText(%q) diverged", g, texts[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestResultConcurrentFirstUse exercises the lazily-built cached
// Inferencer from concurrent first calls: the sync.Once construction
// must be race-free and every caller must see the same instance.
func TestResultConcurrentFirstUse(t *testing.T) {
	res := trainedResult(t)
	text := "support vector machines for machine learning"
	want := fingerprintTheta(res.InferTopics(text, 10))

	// A fresh Result (same artifacts, no cached inferencer) hit
	// concurrently on first use.
	fresh := &Result{
		Corpus: res.Corpus, Mined: res.Mined, Model: res.Model,
		Topics: res.Topics, Options: res.Options,
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := fingerprintTheta(fresh.InferTopics(text, 10)); got != want {
				t.Error("concurrent first-use inference diverged")
			}
		}()
	}
	wg.Wait()
}
