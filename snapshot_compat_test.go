package topmine

import (
	"reflect"
	"testing"
)

// TestLoadPrePR4Snapshot pins backward wire compatibility against a
// golden fixture: testdata/snapshot_pr3.tpm was written by the PR-3
// build (before the topicmodel count matrices moved to flat arenas
// and before Model.DenseSampler existed) with
//
//	topmine -synth dblp-titles -docs 300 -k 4 -iters 30 -seed 7 -save ...
//
// The current build must load it, reconstruct arena-backed counts via
// ResetSampler, and serve deterministic inference from it. A failure
// here means a change to the Model/snapshot encoding broke every
// snapshot in the wild.
func TestLoadPrePR4Snapshot(t *testing.T) {
	res, err := LoadSnapshotFile("testdata/snapshot_pr3.tpm")
	if err != nil {
		t.Fatalf("pre-PR4 snapshot no longer loads: %v", err)
	}
	if res.Model == nil || res.Model.K != 4 {
		t.Fatalf("loaded model malformed: %+v", res.Model)
	}
	if res.Model.V != res.Corpus.Vocab.Size() {
		t.Fatalf("vocab mismatch: model V=%d, vocab=%d", res.Model.V, res.Corpus.Vocab.Size())
	}
	inf, err := res.Inferencer()
	if err != nil {
		t.Fatal(err)
	}
	theta, tokens := inf.InferTopicsTokens("parallel database query optimization", 30)
	if tokens == 0 {
		t.Fatal("planted-domain text mapped to zero in-vocab tokens")
	}
	sum := 0.0
	for _, v := range theta {
		if v <= 0 {
			t.Fatalf("non-positive mixture component: %v", theta)
		}
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("mixture does not normalise: %v", sum)
	}
	// Inference over a loaded snapshot is deterministic per text.
	again, _ := inf.InferTopicsTokens("parallel database query optimization", 30)
	if !reflect.DeepEqual(theta, again) {
		t.Fatal("repeated inference on loaded snapshot diverged")
	}
}
