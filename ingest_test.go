package topmine_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"topmine"
)

// TestRunSourceMatchesRun is the ingest-equivalence gate of the
// streaming refactor: for a fixed seed, running the full pipeline over
// a file streamed from disk must yield byte-identical topic summaries
// to running it over the same documents in memory, at every worker
// count. Every stage downstream of ingest is already deterministic, so
// any divergence pins a corpus-construction difference.
func TestRunSourceMatchesRun(t *testing.T) {
	raw, err := topmine.GenerateExampleCorpus("dblp-titles", 600, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range raw {
		if strings.ContainsRune(d, '\n') {
			t.Fatal("generated doc contains a newline; one-doc-per-line file would split it")
		}
	}
	opt := topmine.DefaultOptions()
	opt.Topics = 4
	opt.Iterations = 40
	opt.MinSupport = 3
	opt.SigThreshold = 3
	opt.Seed = 7

	want, err := topmine.Run(raw, opt)
	if err != nil {
		t.Fatal(err)
	}
	wantTopics := topmine.FormatTopics(want.Topics)

	path := filepath.Join(t.TempDir(), "docs.txt")
	if err := os.WriteFile(path, []byte(strings.Join(raw, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		o := opt
		o.Workers = workers
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		got, err := topmine.RunSource(topmine.LineSource(f), o)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		if gotTopics := topmine.FormatTopics(got.Topics); gotTopics != wantTopics {
			t.Errorf("workers=%d: streamed topics differ from in-memory run\n--- want ---\n%s--- got ---\n%s",
				workers, wantTopics, gotTopics)
		}
		if got.Corpus.TotalTokens != want.Corpus.TotalTokens ||
			got.Corpus.Vocab.Size() != want.Corpus.Vocab.Size() {
			t.Errorf("workers=%d: corpus shape differs: tokens %d vs %d, vocab %d vs %d", workers,
				got.Corpus.TotalTokens, want.Corpus.TotalTokens,
				got.Corpus.Vocab.Size(), want.Corpus.Vocab.Size())
		}
	}
}

// TestRunSourceJSONL covers the JSONL adapter end to end through the
// public API (the CLI's -jsonl path).
func TestRunSourceJSONL(t *testing.T) {
	raw, err := topmine.GenerateExampleCorpus("dblp-titles", 150, 9)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, d := range raw {
		b.WriteString(`{"id": 0, "title": `)
		b.WriteString(quoteJSON(d))
		b.WriteString("}\n")
	}
	opt := topmine.DefaultOptions()
	opt.Topics = 2
	opt.Iterations = 20
	opt.Seed = 9

	fromJSONL, err := topmine.RunSource(topmine.JSONLSource(strings.NewReader(b.String()), "title"), opt)
	if err != nil {
		t.Fatal(err)
	}
	fromMemory, err := topmine.Run(raw, opt)
	if err != nil {
		t.Fatal(err)
	}
	if topmine.FormatTopics(fromJSONL.Topics) != topmine.FormatTopics(fromMemory.Topics) {
		t.Fatal("JSONL-streamed topics differ from in-memory run")
	}
}

// quoteJSON is a minimal JSON string encoder for test fixtures.
func quoteJSON(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`, "\t", `\t`)
	return `"` + r.Replace(s) + `"`
}
