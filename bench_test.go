package topmine

// Benchmarks regenerating the cost side of every table and figure in
// the paper's evaluation (§7). Quality-side regeneration (the actual
// rows/series) lives in cmd/experiments; these benches measure the
// runtimes those experiments compare, at bench-friendly scale:
//
//	go test -bench=. -benchmem
//
// Mapping (see DESIGN.md §4):
//	Table 1        -> BenchmarkTable1_Visualization
//	Figure 3/4/5   -> BenchmarkFig3_Intrusion, Fig4_Coherence, Fig5_Quality
//	Figure 6/7     -> BenchmarkFig6_*, BenchmarkFig7_* (per-sweep and
//	                  perplexity-evaluation cost of PhraseLDA vs LDA)
//	Figure 8       -> BenchmarkFig8_PhraseMining / _PhraseLDA size sweeps
//	Table 3        -> BenchmarkTable3_<Method> (one per compared method)
//	Ablations      -> BenchmarkAblation_* (significance score variants,
//	                  parallel mining/segmentation workers)

import (
	"sync"
	"testing"

	"topmine/internal/baselines"
	"topmine/internal/corpus"
	"topmine/internal/eval"
	"topmine/internal/lru"
	"topmine/internal/phrasemine"
	"topmine/internal/segment"
	"topmine/internal/synth"
	"topmine/internal/topicmodel"
)

// corpusCache shares benchmark corpora across benches.
var corpusCache sync.Map

func benchCorpus(domain string, docs int) *Corpus {
	type key struct {
		d string
		n int
	}
	k := key{domain, docs}
	if v, ok := corpusCache.Load(k); ok {
		return v.(*Corpus)
	}
	spec := synth.Domains()[domain]()
	c := synth.GenerateCorpus(spec, synth.Options{Docs: docs, Seed: 42},
		corpus.DefaultBuildOptions())
	corpusCache.Store(k, c)
	return c
}

func benchOpts() Options {
	o := DefaultOptions()
	o.Topics = 5
	o.Iterations = 30
	o.MinSupport = 5
	o.SigThreshold = 3
	o.Seed = 42
	o.Workers = 1
	o.OptimizeHyper = false
	return o
}

// BenchmarkTable1_Visualization measures the full pipeline behind
// Table 1: mine, segment, train, visualise on a titles corpus.
func BenchmarkTable1_Visualization(b *testing.B) {
	c := benchCorpus("20conf", 1000)
	opt := benchOpts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mined := MinePhrases(c, opt)
		segs := SegmentCorpus(c, mined, opt)
		m := TrainModel(c, segs, opt)
		_ = m.Visualize(c, VisualizeOptions{})
	}
}

// table3Bench runs one compared method end to end at bench scale; the
// per-method ratios are the reproduction of Table 3's ordering.
func table3Bench(b *testing.B, m baselines.Method) {
	b.Helper()
	c := benchCorpus("dblp-titles", 800)
	opt := baselines.Options{K: 5, Iterations: 20, Seed: 42, TopPhrases: 10, MinSupport: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Run(c, opt)
	}
}

func BenchmarkTable3_LDA(b *testing.B)     { table3Bench(b, baselines.LDAUnigrams{}) }
func BenchmarkTable3_ToPMine(b *testing.B) { table3Bench(b, baselines.ToPMine{SigAlpha: 3}) }
func BenchmarkTable3_TNG(b *testing.B)     { table3Bench(b, baselines.TNG{}) }
func BenchmarkTable3_KERT(b *testing.B)    { table3Bench(b, baselines.KERT{}) }
func BenchmarkTable3_PDLDA(b *testing.B)   { table3Bench(b, baselines.PDLDA{}) }
func BenchmarkTable3_Turbo(b *testing.B) {
	table3Bench(b, baselines.TurboTopics{Permutations: 2, MaxRounds: 2})
}

// studyFixture prepares method outputs and a co-occurrence index for
// the Figure 3-5 evaluation benches.
type studyFixture struct {
	idx    *eval.Index
	topics []baselines.TopicPhrases
}

var studyOnce sync.Once
var study studyFixture

func studySetup() studyFixture {
	studyOnce.Do(func() {
		c := benchCorpus("20conf", 1500)
		study.idx = eval.BuildIndex(c)
		study.topics = baselines.ToPMine{SigAlpha: 3}.Run(c, baselines.Options{
			K: 5, Iterations: 30, Seed: 42, TopPhrases: 10, MinSupport: 4,
		})
	})
	return study
}

// BenchmarkFig3_Intrusion measures the 20-question, 3-annotator
// intrusion evaluation of Figure 3.
func BenchmarkFig3_Intrusion(b *testing.B) {
	f := studySetup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eval.Intrusion(f.idx, "ToPMine", f.topics, 20, 3, 0.05, 42)
	}
}

// BenchmarkFig4_Coherence measures the coherence rater of Figure 4.
func BenchmarkFig4_Coherence(b *testing.B) {
	f := studySetup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eval.Coherence(f.idx, f.topics, 10)
	}
}

// BenchmarkFig5_Quality measures the phrase-quality rater of Figure 5.
func BenchmarkFig5_Quality(b *testing.B) {
	f := studySetup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eval.Quality(f.idx, f.topics, 10)
	}
}

// fig67Fixture builds the held-out split and both models' documents
// for the perplexity benches.
func fig67Fixture(b *testing.B, domain string, docs int) (*HeldOut, []topicmodel.Doc, []topicmodel.Doc, int) {
	b.Helper()
	c := benchCorpus(domain, docs)
	ho := SplitHeldOut(c, 0.2)
	opt := benchOpts()
	mined := MinePhrases(ho.Train, opt)
	segs := SegmentCorpus(ho.Train, mined, opt)
	return ho, topicmodel.DocsFromSegmentation(ho.Train, segs),
		topicmodel.DocsUnigram(ho.Train), ho.Train.Vocab.Size()
}

// BenchmarkFig6_* measure the per-sweep Gibbs cost of PhraseLDA vs LDA
// on review text — the x-axis cost of Figure 6. PhraseLDA samples once
// per phrase, so its sweeps are cheaper ("PhraseLDA often runs in
// shorter time than LDA", §7.4).
func BenchmarkFig6_PhraseLDASweep(b *testing.B) {
	_, docs, _, v := fig67Fixture(b, "yelp-reviews", 800)
	m := topicmodel.NewModel(docs, v, topicmodel.Options{K: 10, Iterations: 1, Seed: 42})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Sweep()
	}
}

func BenchmarkFig6_LDASweep(b *testing.B) {
	_, _, docs, v := fig67Fixture(b, "yelp-reviews", 800)
	m := topicmodel.NewModel(docs, v, topicmodel.Options{K: 10, Iterations: 1, Seed: 42})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Sweep()
	}
}

// BenchmarkFig6_Perplexity measures the held-out evaluation itself.
func BenchmarkFig6_Perplexity(b *testing.B) {
	ho, docs, _, v := fig67Fixture(b, "yelp-reviews", 800)
	m := topicmodel.Train(docs, v, topicmodel.Options{K: 10, Iterations: 10, Seed: 42})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Perplexity(m, ho)
	}
}

// BenchmarkFig7_* are the abstracts-corpus counterparts (Figure 7).
func BenchmarkFig7_PhraseLDASweep(b *testing.B) {
	_, docs, _, v := fig67Fixture(b, "dblp-abstracts", 400)
	m := topicmodel.NewModel(docs, v, topicmodel.Options{K: 10, Iterations: 1, Seed: 42})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Sweep()
	}
}

func BenchmarkFig7_LDASweep(b *testing.B) {
	_, _, docs, v := fig67Fixture(b, "dblp-abstracts", 400)
	m := topicmodel.NewModel(docs, v, topicmodel.Options{K: 10, Iterations: 1, Seed: 42})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Sweep()
	}
}

// BenchmarkFig8_PhraseMining sweeps corpus size for the mining half of
// Figure 8's decomposition; linearity shows as flat ns/op per token.
func BenchmarkFig8_PhraseMining(b *testing.B) {
	for _, docs := range []int{250, 500, 1000} {
		c := benchCorpus("dblp-abstracts", docs)
		b.Run(sizeName(docs), func(b *testing.B) {
			opt := phrasemine.Options{MinSupport: 5, MaxLen: 8, Workers: 1}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = phrasemine.Mine(c, opt)
			}
			b.ReportMetric(float64(c.TotalTokens), "tokens")
		})
	}
}

// BenchmarkFig8_PhraseLDA sweeps corpus size for the topic-model half.
func BenchmarkFig8_PhraseLDA(b *testing.B) {
	for _, docs := range []int{250, 500, 1000} {
		c := benchCorpus("dblp-abstracts", docs)
		opt := benchOpts()
		mined := MinePhrases(c, opt)
		segs := SegmentCorpus(c, mined, opt)
		mdocs := topicmodel.DocsFromSegmentation(c, segs)
		b.Run(sizeName(docs), func(b *testing.B) {
			m := topicmodel.NewModel(mdocs, c.Vocab.Size(),
				topicmodel.Options{K: 10, Iterations: 1, Seed: 42})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Sweep()
			}
			b.ReportMetric(float64(c.TotalTokens), "tokens")
		})
	}
}

func sizeName(docs int) string {
	switch {
	case docs >= 1000:
		return "docs_1000"
	case docs >= 500:
		return "docs_500"
	default:
		return "docs_250"
	}
}

// Ablation benches: the design choices DESIGN.md calls out.

// Significance-score variants (Eq. 1 vs PMI vs chi-square) on the same
// mined counts: cost comparison; quality comparison lives in
// cmd/experiments via the eval raters.
func ablationSegmenter(b *testing.B, score segment.ScoreFunc) {
	b.Helper()
	c := benchCorpus("dblp-abstracts", 400)
	mined := phrasemine.Mine(c, phrasemine.Options{MinSupport: 5, MaxLen: 8, Workers: 1})
	seg := segment.NewSegmenter(mined, segment.Options{
		Alpha: 3, MaxPhraseLen: 8, Workers: 1, Score: score,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = seg.SegmentCorpus(c)
	}
}

func BenchmarkAblation_Significance_TStat(b *testing.B) { ablationSegmenter(b, segment.TStat) }
func BenchmarkAblation_Significance_PMI(b *testing.B)   { ablationSegmenter(b, segment.PMI) }
func BenchmarkAblation_Significance_Chi(b *testing.B)   { ablationSegmenter(b, segment.ChiSquare) }

// Parallel mining speedup (the scalability extension).
func ablationMiningWorkers(b *testing.B, workers int) {
	b.Helper()
	c := benchCorpus("dblp-abstracts", 1000)
	opt := phrasemine.Options{MinSupport: 5, MaxLen: 8, Workers: workers}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = phrasemine.Mine(c, opt)
	}
}

func BenchmarkAblation_MiningWorkers_1(b *testing.B) { ablationMiningWorkers(b, 1) }
func BenchmarkAblation_MiningWorkers_4(b *testing.B) { ablationMiningWorkers(b, 4) }

// Hyperparameter optimisation cost (on top of plain sweeps).
func BenchmarkAblation_HyperOpt(b *testing.B) {
	c := benchCorpus("20conf", 1000)
	docs := topicmodel.DocsUnigram(c)
	m := topicmodel.Train(docs, c.Vocab.Size(),
		topicmodel.Options{K: 10, Iterations: 10, Seed: 42})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.OptimizeAlpha(2)
		m.OptimizeBeta(2)
	}
}

// Parallel topic-model sweeps (the AD-LDA-style §8 extension).
func ablationTopicWorkers(b *testing.B, workers int) {
	b.Helper()
	c := benchCorpus("dblp-abstracts", 400)
	opt := benchOpts()
	mined := MinePhrases(c, opt)
	segs := SegmentCorpus(c, mined, opt)
	mdocs := topicmodel.DocsFromSegmentation(c, segs)
	m := topicmodel.NewModel(mdocs, c.Vocab.Size(),
		topicmodel.Options{K: 10, Iterations: 1, Seed: 42})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SweepParallel(workers)
	}
}

func BenchmarkAblation_TopicWorkers_1(b *testing.B) { ablationTopicWorkers(b, 1) }
func BenchmarkAblation_TopicWorkers_4(b *testing.B) { ablationTopicWorkers(b, 4) }

// Background-phrase filtering cost (§8 extension).
func BenchmarkAblation_BackgroundFilter(b *testing.B) {
	c := benchCorpus("dblp-abstracts", 400)
	opt := benchOpts()
	mined := MinePhrases(c, opt)
	segs := SegmentCorpus(c, mined, opt)
	m := TrainModel(c, segs, opt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Visualize(c, VisualizeOptions{FilterBackground: true})
	}
}

// --- Serving-path cache benchmarks (PR 2) ---------------------------
//
// BenchmarkServeInferCached vs BenchmarkServeInferUncached measure the
// repeated-request economics of the serve path: inference is
// deterministic per input text, so an LRU keyed by (text, iters) is an
// exact cache and a hit replaces a full 2×iters-sweep Gibbs run with a
// map lookup. The HTTP-layer counterparts (full handler stack) live in
// internal/serve/bench_test.go as BenchmarkHTTPInfer{Cached,Uncached}.

var (
	serveBenchOnce sync.Once
	serveBenchInf  *Inferencer
)

func serveBenchInferencer(b *testing.B) *Inferencer {
	b.Helper()
	serveBenchOnce.Do(func() {
		c := benchCorpus("20conf", 1000)
		res, err := RunCorpus(c, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		inf, err := res.Inferencer()
		if err != nil {
			b.Fatal(err)
		}
		serveBenchInf = inf
	})
	if serveBenchInf == nil {
		b.Fatal("bench inferencer failed to build")
	}
	return serveBenchInf
}

const serveBenchText = "support vector machines for text classification"

// BenchmarkServeInferUncached is the raw per-request inference cost a
// cache miss pays (50 sampling sweeps + equal burn-in).
func BenchmarkServeInferUncached(b *testing.B) {
	inf := serveBenchInferencer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = inf.InferTopics(serveBenchText, 50)
	}
}

// BenchmarkServeInferCached front-loads one real inference and then
// serves every request from the sharded LRU — the steady state for
// repeated identical requests.
func BenchmarkServeInferCached(b *testing.B) {
	inf := serveBenchInferencer(b)
	type key struct {
		text  string
		iters int
	}
	cache := lru.New(32<<20, 8, func(k key, v []float64) int {
		return len(k.text) + 8*len(v)
	})
	k := key{serveBenchText, 50}
	cache.Put(k, inf.InferTopics(serveBenchText, 50))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		theta, ok := cache.Get(k)
		if !ok {
			cache.Put(k, inf.InferTopics(serveBenchText, 50))
		}
		_ = theta
	}
}
