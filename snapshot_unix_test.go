//go:build unix

package topmine

import (
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestSaveSnapshotFilePermissions(t *testing.T) {
	res := trainedResult(t)
	dir := t.TempDir()

	// A fresh save honours the process umask like os.Create would.
	fresh := filepath.Join(dir, "fresh.tpm")
	old := syscall.Umask(0o077)
	err := SaveSnapshotFile(fresh, res)
	syscall.Umask(old)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if got := fi.Mode().Perm(); got != 0o600 {
		t.Fatalf("fresh snapshot under umask 077 has mode %o, want 600", got)
	}

	// Re-saving preserves the existing file's mode.
	if err := os.Chmod(fresh, 0o640); err != nil {
		t.Fatal(err)
	}
	if err := SaveSnapshotFile(fresh, res); err != nil {
		t.Fatal(err)
	}
	fi, err = os.Stat(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if got := fi.Mode().Perm(); got != 0o640 {
		t.Fatalf("re-saved snapshot has mode %o, want preserved 640", got)
	}
}
