package topmine

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestAppendEquivalence is the tentpole acceptance pin: a corpus grown
// with AppendCorpusFile is equivalent to a from-scratch build over the
// concatenated input — re-persisting its preprocessing yields the
// identical .tpc bytes, and training it yields the identical topics.
func TestAppendEquivalence(t *testing.T) {
	docs := corpusFileTestDocs(t)
	half := len(docs) / 2
	opt := corpusFileTestOptions()
	dir := t.TempDir()

	// From-scratch build over the concatenated input.
	scratchPath := filepath.Join(dir, "scratch.tpc")
	pre, err := Preprocess(SliceSource(docs), opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveCorpusFile(scratchPath, pre); err != nil {
		t.Fatal(err)
	}
	wantBytes, err := os.ReadFile(scratchPath)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(docs, opt)
	if err != nil {
		t.Fatal(err)
	}
	wantTopics := FormatTopics(want.Topics)

	// Grown build: preprocess the first half, append the second.
	grownPath := filepath.Join(dir, "grown.tpc")
	pre1, err := Preprocess(SliceSource(docs[:half]), opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveCorpusFile(grownPath, pre1); err != nil {
		t.Fatal(err)
	}
	stats, err := AppendCorpusFile(grownPath, SliceSource(docs[half:]), AppendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DocsAdded != len(docs)-half || stats.Segments != 1 {
		t.Fatalf("append stats = %+v", stats)
	}

	cf, err := OpenCorpusFile(grownPath)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	if cf.Version() != 2 || cf.AppendedSegments() != 1 {
		t.Fatalf("grown file: version %d, %d segments", cf.Version(), cf.AppendedSegments())
	}
	if cf.StaleArtifacts() == "" {
		t.Error("appending must mark the bundled artifacts stale")
	}

	// Trained topics must be byte-identical to the from-scratch run.
	res, err := cf.Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if got := FormatTopics(res.Topics); got != wantTopics {
		t.Errorf("topics trained from the grown file differ from the from-scratch run:\n--- scratch ---\n%s\n--- grown ---\n%s", wantTopics, got)
	}

	// Re-persisting the grown corpus's preprocessing must reproduce the
	// from-scratch file byte for byte.
	rePre, err := PreprocessCorpus(cf.Corpus(), opt)
	if err != nil {
		t.Fatal(err)
	}
	rePath := filepath.Join(dir, "repersisted.tpc")
	if err := SaveCorpusFile(rePath, rePre); err != nil {
		t.Fatal(err)
	}
	gotBytes, err := os.ReadFile(rePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Errorf("re-persisted grown corpus differs from the from-scratch file (%d vs %d bytes)", len(gotBytes), len(wantBytes))
	}
}

// TestIncrementalResume pins incremental training: UpdateTraining on a
// grown corpus is deterministic for a fixed seed, and its seed-averaged
// held-out perplexity lands within 2% of batch training on the union.
func TestIncrementalResume(t *testing.T) {
	docs := corpusFileTestDocs(t)
	shard := 2 * len(docs) / 3
	opt := corpusFileTestOptions()
	opt.Iterations = 100
	dir := t.TempDir()

	// The union corpus drives one shared held-out split for both sides.
	unionCorpus := BuildCorpus(docs, DefaultCorpusOptions())
	ho := SplitHeldOut(unionCorpus, 0.25)

	grow := func(seed uint64) *CorpusFile {
		o := opt
		o.Seed = seed
		path := filepath.Join(dir, "inc.tpc")
		pre, err := Preprocess(SliceSource(docs[:shard]), o)
		if err != nil {
			t.Fatal(err)
		}
		if err := SaveCorpusFile(path, pre); err != nil {
			t.Fatal(err)
		}
		if _, err := AppendCorpusFile(path, SliceSource(docs[shard:]), AppendOptions{}); err != nil {
			t.Fatal(err)
		}
		cf, err := OpenCorpusFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return cf
	}

	// Determinism: two independent updates from the same snapshot and
	// grown file must produce identical assignments and topics.
	{
		cf := grow(opt.Seed)
		defer cf.Close()
		pre1Path := filepath.Join(dir, "shard1.tpc")
		pre, err := Preprocess(SliceSource(docs[:shard]), opt)
		if err != nil {
			t.Fatal(err)
		}
		if err := SaveCorpusFile(pre1Path, pre); err != nil {
			t.Fatal(err)
		}
		snapPath := filepath.Join(dir, "snap.tpm")
		base, err := RunCorpusFile(pre1Path, opt)
		if err != nil {
			t.Fatal(err)
		}
		if err := SaveTrainingSnapshotFile(snapPath, base); err != nil {
			t.Fatal(err)
		}
		base.Close()

		update := func() *Result {
			res, err := LoadSnapshotFile(snapPath)
			if err != nil {
				t.Fatal(err)
			}
			if err := res.UpdateTraining(cf, 10); err != nil {
				t.Fatal(err)
			}
			return res
		}
		a, b := update(), update()
		defer a.Close()
		defer b.Close()
		if len(a.Model.Z) != len(b.Model.Z) {
			t.Fatalf("updated models hold %d and %d documents", len(a.Model.Z), len(b.Model.Z))
		}
		for d := range a.Model.Z {
			for g := range a.Model.Z[d] {
				if a.Model.Z[d][g] != b.Model.Z[d][g] {
					t.Fatalf("updated assignments diverge at doc %d clique %d", d, g)
				}
			}
		}
		if FormatTopics(a.Topics) != FormatTopics(b.Topics) {
			t.Error("updated topics differ across identical updates")
		}
		if len(a.Model.Docs) != len(unionCorpus.Docs) {
			t.Fatalf("updated model spans %d documents, union has %d", len(a.Model.Docs), len(unionCorpus.Docs))
		}
	}

	// Quality: seed-averaged held-out perplexity of incremental vs
	// batch training on the union, within 2%.
	seeds := []uint64{3, 17, 91}
	var batchSum, incSum float64
	for _, seed := range seeds {
		o := opt
		o.Seed = seed

		batch, err := Run(docs, o)
		if err != nil {
			t.Fatal(err)
		}
		batchSum += Perplexity(batch.Model, ho)

		// Incremental: train on shard 1, then UpdateTraining folds the
		// grown corpus in and continues for the same sweep budget.
		shardCorpus := BuildCorpus(docs[:shard], DefaultCorpusOptions())
		resInc, err := RunCorpus(shardCorpus, o)
		if err != nil {
			t.Fatal(err)
		}
		cf2 := grow(seed)
		if err := resInc.UpdateTraining(cf2, o.Iterations); err != nil {
			t.Fatal(err)
		}
		incSum += Perplexity(resInc.Model, ho)
		resInc.Close()
		cf2.Close()
	}
	batchAvg := batchSum / float64(len(seeds))
	incAvg := incSum / float64(len(seeds))
	// The tolerance is a quality floor: incremental training must not
	// degrade held-out perplexity by more than 2% relative to batch
	// training on the union. It regularly lands *better* — the shard
	// model's extra sweeps are a head start, not a handicap — and that
	// is not a failure.
	if incAvg > batchAvg*1.02 {
		t.Errorf("incremental perplexity %.2f vs batch %.2f: %.1f%% worse, want <= 2%%",
			incAvg, batchAvg, 100*(incAvg-batchAvg)/batchAvg)
	} else {
		t.Logf("incremental perplexity %.2f vs batch %.2f (%+.2f%%)",
			incAvg, batchAvg, 100*(incAvg-batchAvg)/batchAvg)
	}
}

// TestUpdateTrainingRejects pins the guard rails: non-resumable
// results, shrunk corpora and foreign vocabularies all fail loudly and
// leave the Result untouched.
func TestUpdateTrainingRejects(t *testing.T) {
	docs := corpusFileTestDocs(t)
	opt := corpusFileTestOptions()
	dir := t.TempDir()

	path := filepath.Join(dir, "c.tpc")
	pre, err := Preprocess(SliceSource(docs[:100]), opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveCorpusFile(path, pre); err != nil {
		t.Fatal(err)
	}
	cf, err := OpenCorpusFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()

	// A frozen (non-resumable) snapshot cannot update.
	res, err := RunCorpusFile(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, "frozen.tpm")
	if err := SaveSnapshotFile(snapPath, res); err != nil {
		t.Fatal(err)
	}
	res.Close()
	frozen, err := LoadSnapshotFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := frozen.UpdateTraining(cf, 1); err == nil {
		t.Error("updating a frozen snapshot should fail")
	}

	// A corpus file with fewer documents than the model trained on is
	// not a grown version of the training corpus.
	big, err := Run(docs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := big.UpdateTraining(cf, 1); err == nil {
		t.Error("updating against a smaller corpus should fail")
	}

	// A corpus whose vocabulary is not an extension fails the prefix
	// check even when it has more documents.
	other, err := Run(docs[100:150], opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.UpdateTraining(cf, 1); err == nil {
		t.Error("updating against a foreign vocabulary should fail")
	}
	if err := other.Model.CheckInvariants(); err != nil {
		t.Errorf("failed update left the model corrupt: %v", err)
	}
}

// TestSaveCorpusFileSketched pins the sketch-at-preprocess path: the
// saved file serves sketches, and a deduplicating append against it
// skips stored near-duplicates without retokenizing.
func TestSaveCorpusFileSketched(t *testing.T) {
	docs := corpusFileTestDocs(t)
	opt := corpusFileTestOptions()
	path := filepath.Join(t.TempDir(), "sketched.tpc")

	pre, err := Preprocess(SliceSource(docs[:50]), opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveCorpusFileSketched(path, pre); err != nil {
		t.Fatal(err)
	}
	// Append a stored duplicate plus one fresh document with dedup on.
	stats, err := AppendCorpusFile(path, SliceSource([]string{docs[3], docs[60]}), AppendOptions{Dedup: true, Sketch: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DocsSkipped != 1 || stats.DocsAdded != 1 {
		t.Fatalf("dedup append stats = %+v, want 1 skipped / 1 added", stats)
	}
}
