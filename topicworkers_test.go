package topmine

import (
	"math"
	"testing"
)

func TestTopicWorkersPipeline(t *testing.T) {
	docs, _ := GenerateExampleCorpus("20conf", 300, 29)
	opt := smallOpts()
	opt.TopicWorkers = 4
	opt.Iterations = 40
	res, err := Run(docs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Model.CheckInvariants(); err != nil {
		t.Fatalf("parallel-trained model inconsistent: %v", err)
	}
	if len(res.Topics) != opt.Topics {
		t.Fatalf("topics = %d", len(res.Topics))
	}
}

func TestTopicWorkersPerplexityComparable(t *testing.T) {
	docs, _ := GenerateExampleCorpus("yelp-reviews", 200, 31)
	c := BuildCorpus(docs, DefaultCorpusOptions())
	ho := SplitHeldOut(c, 0.2)
	opt := smallOpts()
	opt.Iterations = 80
	opt.OptimizeHyper = false

	mined := MinePhrases(ho.Train, opt)
	segs := SegmentCorpus(ho.Train, mined, opt)
	serial := TrainModel(ho.Train, segs, opt)

	popt := opt
	popt.TopicWorkers = 4
	parallel := TrainModel(ho.Train, segs, popt)

	ps, pp := Perplexity(serial, ho), Perplexity(parallel, ho)
	if math.IsNaN(ps) || math.IsNaN(pp) {
		t.Fatalf("NaN perplexity: %v %v", ps, pp)
	}
	if pp > ps*1.15 || pp < ps*0.85 {
		t.Fatalf("parallel perplexity %v too far from serial %v", pp, ps)
	}
}

func TestTopicWorkersDeterministic(t *testing.T) {
	docs, _ := GenerateExampleCorpus("20conf", 150, 37)
	opt := smallOpts()
	opt.TopicWorkers = 3
	opt.Iterations = 25
	a, err := Run(docs, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(docs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if FormatTopics(a.Topics) != FormatTopics(b.Topics) {
		t.Fatal("parallel pipeline nondeterministic for fixed worker count")
	}
}
