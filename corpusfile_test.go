package topmine

import (
	"path/filepath"
	"testing"
)

// corpusFileTestOptions keeps the round-trip suites fast while still
// exercising hyperparameter optimisation off the default path.
func corpusFileTestOptions() Options {
	opt := DefaultOptions()
	opt.Topics = 4
	opt.Iterations = 5
	opt.MinSupport = 3
	opt.Seed = 7
	opt.OptimizeHyper = false
	opt.Workers = 1
	return opt
}

func corpusFileTestDocs(t testing.TB) []string {
	t.Helper()
	docs, err := GenerateExampleCorpus("yelp-reviews", 300, 11)
	if err != nil {
		t.Fatal(err)
	}
	return docs
}

// TestCorpusFileRoundTripTopics is the acceptance pin for the
// persistent corpus store: build corpus → preprocess → write .tpc →
// mmap-open → train → the topics must be byte-identical to training
// the same documents entirely in memory with the same seed. CI runs
// this as the corpus round-trip smoke step.
func TestCorpusFileRoundTripTopics(t *testing.T) {
	docs := corpusFileTestDocs(t)
	opt := corpusFileTestOptions()

	want, err := Run(docs, opt)
	if err != nil {
		t.Fatal(err)
	}
	wantTopics := FormatTopics(want.Topics)

	pre, err := Preprocess(SliceSource(docs), opt)
	if err != nil {
		t.Fatal(err)
	}
	if pre.Model != nil || pre.Topics != nil {
		t.Fatal("Preprocess must not train a model")
	}
	path := filepath.Join(t.TempDir(), "corpus.tpc")
	if err := SaveCorpusFile(path, pre); err != nil {
		t.Fatal(err)
	}

	cf, err := OpenCorpusFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !cf.CanReuseArtifacts(opt) {
		t.Error("stored artifacts should match the options that produced them")
	}
	res, err := cf.Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatTopics(res.Topics); got != wantTopics {
		t.Errorf("mmap-trained topics differ from in-memory topics:\n--- in-memory ---\n%s\n--- corpus file ---\n%s", wantTopics, got)
	}
	if err := res.Close(); err != nil {
		t.Fatal(err)
	}
	if err := res.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestCorpusFileRunMany pins the reference-counted mapping: several
// Results trained from one open file stay valid while siblings (and
// the handle) close, and the mapping survives until the last closer.
func TestCorpusFileRunMany(t *testing.T) {
	docs := corpusFileTestDocs(t)
	opt := corpusFileTestOptions()
	pre, err := Preprocess(SliceSource(docs), opt)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "corpus.tpc")
	if err := SaveCorpusFile(path, pre); err != nil {
		t.Fatal(err)
	}
	cf, err := OpenCorpusFile(path)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := cf.Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt2 := opt
	opt2.Topics = 3
	opt2.Seed = 99
	res2, err := cf.Run(opt2)
	if err != nil {
		t.Fatal(err)
	}
	// Closing the handle and the first Result must leave res2's corpus
	// (which aliases the shared mapping) fully usable.
	if err := cf.Close(); err != nil {
		t.Fatal(err)
	}
	if err := res1.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(res2.InferTopics("great food and friendly service", 10)); got != 3 {
		t.Fatalf("res2 inference after sibling close: %d topics, want 3", got)
	}
	stats := res2.Corpus.ComputeStats() // walks the mmap'd arena
	if stats.Docs != 300 {
		t.Fatalf("res2 corpus unreadable after sibling close: %+v", stats)
	}
	if err := res2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cf.Close(); err != nil {
		t.Fatalf("handle Close must stay idempotent: %v", err)
	}
	// The mapping is gone: a late Run must error, not hand out views
	// into unmapped memory.
	if _, err := cf.Run(opt); err == nil {
		t.Fatal("Run on a fully released CorpusFile must error")
	}
}

// TestCorpusFileRecomputesOnParamMismatch verifies that stored
// artifacts are ignored (and mining+segmentation rerun) when the
// training job uses different mining parameters — and that the result
// still matches a fully in-memory run under those parameters.
func TestCorpusFileRecomputesOnParamMismatch(t *testing.T) {
	docs := corpusFileTestDocs(t)
	preOpt := corpusFileTestOptions()
	pre, err := Preprocess(SliceSource(docs), preOpt)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "corpus.tpc")
	if err := SaveCorpusFile(path, pre); err != nil {
		t.Fatal(err)
	}

	trainOpt := preOpt
	trainOpt.MinSupport = 5 // differs from the stored Params
	want, err := Run(docs, trainOpt)
	if err != nil {
		t.Fatal(err)
	}

	cf, err := OpenCorpusFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if cf.CanReuseArtifacts(trainOpt) {
		t.Error("artifacts must not be reusable under different mining parameters")
	}
	res, err := cf.Run(trainOpt)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if got, wantS := FormatTopics(res.Topics), FormatTopics(want.Topics); got != wantS {
		t.Errorf("recomputed topics differ from in-memory run:\n%s\nvs\n%s", got, wantS)
	}
	if res.Mined == cf.Mined() {
		t.Error("mined phrases should have been recomputed, not reused")
	}
}

// TestCorpusFileCorpusOnly pins the corpus-only path: a Result that
// never ran mining saves a corpus-only file, and training from it
// still matches the in-memory pipeline bit for bit.
func TestCorpusFileCorpusOnly(t *testing.T) {
	docs := corpusFileTestDocs(t)
	opt := corpusFileTestOptions()
	c, err := BuildCorpusFromSource(SliceSource(docs), DefaultCorpusOptions())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "corpus.tpc")
	if err := SaveCorpusFile(path, &Result{Corpus: c}); err != nil {
		t.Fatal(err)
	}
	want, err := Run(docs, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCorpusFile(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if res.Mined == nil || res.Segmented == nil {
		t.Fatal("corpus-only run must recompute mining and segmentation")
	}
	if got, wantS := FormatTopics(res.Topics), FormatTopics(want.Topics); got != wantS {
		t.Errorf("corpus-only topics differ from in-memory run")
	}
}

// TestCorpusFileServesInference verifies the serving path works
// against a corpus-file-trained Result (and that snapshots saved from
// one remain self-contained after the mapping closes).
func TestCorpusFileServesInference(t *testing.T) {
	docs := corpusFileTestDocs(t)
	opt := corpusFileTestOptions()
	pre, err := Preprocess(SliceSource(docs), opt)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	tpc := filepath.Join(dir, "corpus.tpc")
	if err := SaveCorpusFile(tpc, pre); err != nil {
		t.Fatal(err)
	}
	res, err := RunCorpusFile(tpc, opt)
	if err != nil {
		t.Fatal(err)
	}
	theta := res.InferTopics("great food and friendly service", 10)
	if len(theta) != opt.Topics {
		t.Fatalf("inferred mixture has %d topics, want %d", len(theta), opt.Topics)
	}
	snap := filepath.Join(dir, "model.tpm")
	if err := SaveSnapshotFile(snap, res); err != nil {
		t.Fatal(err)
	}
	if err := res.Close(); err != nil {
		t.Fatal(err)
	}
	// The snapshot must be fully independent of the closed mapping.
	loaded, err := LoadSnapshotFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	theta2 := loaded.InferTopics("great food and friendly service", 10)
	if len(theta2) != opt.Topics {
		t.Fatalf("snapshot inference broken after mapping closed")
	}
}
