package topmine

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// inferTexts exercises in-vocabulary, mixed, and out-of-vocabulary
// inputs for round-trip comparisons.
var inferTexts = []string{
	"support vector machines for text classification",
	"query processing in database systems with query optimization",
	"machine learning models, neural network training",
	"zzzzz qqqqq entirely out of vocabulary",
	"",
}

func mustSnapshot(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveSnapshot(&buf, res); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	return buf.Bytes()
}

func TestSnapshotRoundTripInferenceExact(t *testing.T) {
	res := trainedResult(t)
	data := mustSnapshot(t, res)

	loaded, err := LoadSnapshot(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	if got, want := loaded.Corpus.Vocab.Size(), res.Corpus.Vocab.Size(); got != want {
		t.Fatalf("vocab size = %d, want %d", got, want)
	}
	if got, want := loaded.Mined.Counts.Len(), res.Mined.Counts.Len(); got != want {
		t.Fatalf("mined phrases = %d, want %d", got, want)
	}
	if got, want := loaded.Model.K, res.Model.K; got != want {
		t.Fatalf("model K = %d, want %d", got, want)
	}
	if loaded.Options != res.Options {
		t.Fatalf("options differ: %+v vs %+v", loaded.Options, res.Options)
	}

	for _, text := range inferTexts {
		want := res.InferTopics(text, 30)
		got := loaded.InferTopics(text, 30)
		if len(got) != len(want) {
			t.Fatalf("%q: theta len %d, want %d", text, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("%q: theta[%d] = %v, want %v (exact)", text, k, got[k], want[k])
			}
		}
	}

	// Segmentation and tracing survive the round trip too.
	for _, text := range inferTexts {
		wantTr := res.TraceText(text)
		gotTr := loaded.TraceText(text)
		if len(gotTr) != len(wantTr) {
			t.Fatalf("%q: %d traces, want %d", text, len(gotTr), len(wantTr))
		}
		for i := range wantTr {
			if strings.Join(gotTr[i].Phrases, "|") != strings.Join(wantTr[i].Phrases, "|") {
				t.Fatalf("%q: trace %d phrases %v, want %v", text, i, gotTr[i].Phrases, wantTr[i].Phrases)
			}
		}
	}

	// Rendered topic summaries are carried verbatim.
	if FormatTopics(loaded.Topics) != FormatTopics(res.Topics) {
		t.Fatal("topic summaries changed across the round trip")
	}
}

func TestSnapshotStripsTrainingState(t *testing.T) {
	res := trainedResult(t)
	loaded, err := LoadSnapshot(bytes.NewReader(mustSnapshot(t, res)))
	if err != nil {
		t.Fatal(err)
	}
	m := loaded.Model
	if m.Docs != nil || m.Z != nil || m.Ndk != nil || m.Nd != nil {
		t.Fatal("snapshot carried per-document training state")
	}
	if m.Nwk == nil || m.Nk == nil || m.Alpha == nil {
		t.Fatal("snapshot dropped frozen serving parameters")
	}
}

func TestSnapshotPreservesCorpusOptions(t *testing.T) {
	docs, err := GenerateExampleCorpus("20conf", 400, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Non-default preprocessing: no stemming. Inference after a round
	// trip must normalise query text the same way training did.
	copt := CorpusOptions{Stem: false, RemoveStopwords: true, KeepSurface: true}
	c := BuildCorpus(docs, copt)
	opt := smallOpts()
	opt.Iterations = 40
	res, err := RunCorpus(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(bytes.NewReader(mustSnapshot(t, res)))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Corpus.BuildOpts != copt {
		t.Fatalf("BuildOpts = %+v, want %+v", loaded.Corpus.BuildOpts, copt)
	}
	text := "support vector machines for text classification"
	want := res.InferTopics(text, 20)
	got := loaded.InferTopics(text, 20)
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("theta[%d] = %v, want %v", k, got[k], want[k])
		}
	}
}

func TestLoadSnapshotRejectsMalformedModelShapes(t *testing.T) {
	res := trainedResult(t)
	loaded, err := LoadSnapshot(bytes.NewReader(mustSnapshot(t, res)))
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with the frozen parameter shapes while keeping K and V
	// self-consistent, then re-save: the writer does not shape-check
	// Alpha/Nk/Nwk, so the file is CRC-valid and only load-time
	// validation stands between it and an inference-time panic.
	loaded.Model.Alpha = loaded.Model.Alpha[:1]
	tampered := mustSnapshot(t, loaded)
	if _, err := LoadSnapshot(bytes.NewReader(tampered)); err == nil {
		t.Fatal("LoadSnapshot accepted a model with truncated Alpha")
	}

	loaded2, err := LoadSnapshot(bytes.NewReader(mustSnapshot(t, res)))
	if err != nil {
		t.Fatal(err)
	}
	loaded2.Model.Nwk[0] = loaded2.Model.Nwk[0][:1]
	if _, err := LoadSnapshot(bytes.NewReader(mustSnapshot(t, loaded2))); err == nil {
		t.Fatal("LoadSnapshot accepted a model with a short Nwk row")
	}
}

func TestSaveSnapshotRejectsVocabModelMismatch(t *testing.T) {
	res := trainedResult(t)
	other, err := GenerateExampleCorpus("ap-news", 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	mismatched := &Result{
		Corpus:  BuildCorpus(other, DefaultCorpusOptions()),
		Mined:   res.Mined,
		Model:   res.Model,
		Options: res.Options,
	}
	var buf bytes.Buffer
	if err := SaveSnapshot(&buf, mismatched); err == nil {
		t.Fatal("SaveSnapshot accepted a model trained on a different vocabulary")
	}
}

func TestSaveSnapshotFileAtomic(t *testing.T) {
	res := trainedResult(t)
	path := filepath.Join(t.TempDir(), "model.tpm")
	if err := SaveSnapshotFile(path, res); err != nil {
		t.Fatal(err)
	}
	// A failed re-save (incomplete Result) must leave the original
	// file untouched and loadable.
	if err := SaveSnapshotFile(path, &Result{}); err == nil {
		t.Fatal("SaveSnapshotFile accepted an empty Result")
	}
	if _, err := LoadSnapshotFile(path); err != nil {
		t.Fatalf("existing snapshot destroyed by failed save: %v", err)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("expected only the snapshot in the directory, found %d entries", len(entries))
	}
}

func TestSaveSnapshotFileBareFilename(t *testing.T) {
	res := trainedResult(t)
	dir := t.TempDir()
	t.Chdir(dir)
	// A path with no directory component must stage its temp file in
	// the working directory (not os.TempDir), or the atomic rename can
	// cross filesystems and fail.
	if err := SaveSnapshotFile("model.tpm", res); err != nil {
		t.Fatalf("SaveSnapshotFile with bare filename: %v", err)
	}
	if _, err := LoadSnapshotFile("model.tpm"); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "model.tpm" {
		t.Fatalf("working directory not clean after save: %v", entries)
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	res := trainedResult(t)
	path := filepath.Join(t.TempDir(), "model.tpm")
	if err := SaveSnapshotFile(path, res); err != nil {
		t.Fatalf("SaveSnapshotFile: %v", err)
	}
	loaded, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatalf("LoadSnapshotFile: %v", err)
	}
	text := inferTexts[0]
	want := res.InferTopics(text, 20)
	got := loaded.InferTopics(text, 20)
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("theta[%d] = %v, want %v", k, got[k], want[k])
		}
	}
}

func TestSnapshotDeterministicBytes(t *testing.T) {
	res := trainedResult(t)
	a := mustSnapshot(t, res)
	b := mustSnapshot(t, res)
	if !bytes.Equal(a, b) {
		t.Fatal("two saves of the same Result produced different bytes")
	}
}

func TestLoadSnapshotRejectsBadInput(t *testing.T) {
	res := trainedResult(t)
	valid := mustSnapshot(t, res)

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short magic", valid[:4]},
		{"bad magic", []byte("NOTASNAPSHOTFILE")},
		{"header only", valid[:len(snapshotMagic)+2]},
		{"truncated payload", valid[:len(valid)/3]},
		{"flipped payload byte", flip(valid, len(valid)-len(valid)/4)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := LoadSnapshot(bytes.NewReader(tc.data)); err == nil {
				t.Fatalf("LoadSnapshot accepted %s input", tc.name)
			}
		})
	}
}

func TestLoadSnapshotRejectsWrongVersion(t *testing.T) {
	res := trainedResult(t)
	data := mustSnapshot(t, res)
	binary.BigEndian.PutUint16(data[len(snapshotMagic):], SnapshotVersion+41)
	_, err := LoadSnapshot(bytes.NewReader(data))
	if err == nil {
		t.Fatal("LoadSnapshot accepted a future format version")
	}
	if !strings.Contains(err.Error(), "version") {
		t.Fatalf("error %q does not mention the version", err)
	}
}

func TestSaveSnapshotRejectsIncompleteResult(t *testing.T) {
	res := trainedResult(t)
	var buf bytes.Buffer
	cases := []struct {
		name string
		r    *Result
	}{
		{"nil result", nil},
		{"no corpus", &Result{Mined: res.Mined, Model: res.Model}},
		{"no mined", &Result{Corpus: res.Corpus, Model: res.Model}},
		{"no model", &Result{Corpus: res.Corpus, Mined: res.Mined}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := SaveSnapshot(&buf, tc.r); err == nil {
				t.Fatalf("SaveSnapshot accepted a Result with %s", tc.name)
			}
		})
	}
}

// flip returns a copy of data with one bit inverted at index i.
func flip(data []byte, i int) []byte {
	out := append([]byte(nil), data...)
	out[i] ^= 0x40
	return out
}
