package topmine

import "fmt"

// Resumable reports whether this Result can continue Gibbs training:
// its model must carry per-document training state, which is the case
// for freshly trained pipelines and for snapshots written by
// SaveTrainingSnapshot — but not for frozen (serving-only) snapshots.
func (r *Result) Resumable() bool {
	return r != nil && r.Model != nil && len(r.Model.Docs) > 0
}

// ResumeTraining continues collapsed Gibbs sampling for iters more
// sweeps on the Result's model, in place, and re-renders Topics from
// the new state. It is the programmatic form of
// `topmine -load snap.tpm -iters N -save snap2.tpm`.
//
// The sampler state gob never carries (RNG position, sparse indexes)
// was re-armed by Model.ResetSampler at load time, seeded from the
// pipeline seed, so resuming a given snapshot is deterministic: two
// loads resumed for the same iteration count produce byte-identical
// topics. Hyperparameter optimisation continues on the training
// schedule (every 25 sweeps) when the pipeline options enabled it.
// The cached Inferencer, if any, is dropped — it captured the
// pre-resume counts.
func (r *Result) ResumeTraining(iters int) error {
	if iters <= 0 {
		return fmt.Errorf("topmine: ResumeTraining: iters must be positive, got %d", iters)
	}
	if r.Model == nil {
		return fmt.Errorf("topmine: ResumeTraining: Result has no model")
	}
	if !r.Resumable() {
		return fmt.Errorf("topmine: ResumeTraining: model carries no training state; save with SaveTrainingSnapshot (topmine -save-state) to resume later")
	}
	// hyperEvery mirrors topicmodel's training default. The loaded
	// model is past burn-in by construction (it was already trained),
	// so the post-burn-in cadence applies from the first resumed sweep.
	// TopicWorkers is honored like the original training run: >1
	// resumes with the parallel AD-LDA-style sampler (deterministic
	// per worker count), otherwise the exact serial sampler.
	const hyperEvery = 25
	for it := 1; it <= iters; it++ {
		if r.Options.TopicWorkers > 1 {
			r.Model.SweepParallel(r.Options.TopicWorkers)
		} else {
			r.Model.Sweep()
		}
		if r.Options.OptimizeHyper && it%hyperEvery == 0 {
			r.Model.OptimizeAlpha(5)
			r.Model.OptimizeBeta(5)
		}
	}
	r.Topics = r.Model.Visualize(r.Corpus, visualizeOptions(r.Options))
	r.inferMu.Lock()
	r.inferer = nil // captured pre-resume counts; rebuild lazily
	r.inferMu.Unlock()
	return nil
}
