package topmine

// Ingest-path benchmarks guarding the streaming/columnar refactor:
// BenchmarkBuildCorpus reports tokens/sec (build throughput) and
// bytes/doc (heap retained by the finished corpus), so regressions in
// either dimension show up as a metric shift. CI runs it with
// -benchtime=1x as a smoke test on every push.
//
//	go test -run '^$' -bench BenchmarkBuildCorpus -benchtime 10x .

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

func benchmarkBuild(b *testing.B, raw []string, opt CorpusOptions) {
	b.Helper()
	var c *Corpus
	var err error
	start := time.Now()
	for i := 0; i < b.N; i++ {
		c, err = BuildCorpusFromSource(SliceSource(raw), opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	b.StopTimer()
	b.ReportMetric(float64(c.TotalTokens)*float64(b.N)/elapsed.Seconds(), "tokens/sec")

	// Retained footprint: build one corpus across a GC fence and
	// report the live-heap delta per document.
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	kept, err := BuildCorpusFromSource(SliceSource(raw), opt)
	if err != nil {
		b.Fatal(err)
	}
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	b.ReportMetric(float64(after.HeapAlloc-before.HeapAlloc)/float64(kept.NumDocs()), "bytes/doc")
	runtime.KeepAlive(kept)
}

func BenchmarkBuildCorpus(b *testing.B) {
	for _, domain := range []string{"yelp-reviews", "dblp-titles"} {
		raw, err := GenerateExampleCorpus(domain, 2000, 42)
		if err != nil {
			b.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			opt := DefaultCorpusOptions()
			opt.Workers = workers
			b.Run(fmt.Sprintf("%s/workers=%d", domain, workers), func(b *testing.B) {
				benchmarkBuild(b, raw, opt)
			})
		}
		b.Run(fmt.Sprintf("%s/nosurface", domain), func(b *testing.B) {
			opt := DefaultCorpusOptions()
			opt.KeepSurface = false
			opt.Workers = 1
			benchmarkBuild(b, raw, opt)
		})
	}
}
