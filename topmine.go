// Package topmine implements ToPMine (El-Kishky, Song, Wang, Voss,
// Han: "Scalable Topical Phrase Mining from Text Corpora", VLDB 2014):
// scalable discovery of topical phrases of mixed length by frequent
// contiguous phrase mining, statistically-guided document segmentation
// and phrase-constrained topic modeling (PhraseLDA).
//
// The one-call entry point:
//
//	result, err := topmine.Run(docs, topmine.DefaultOptions())
//	for _, t := range result.Topics {
//		fmt.Println(t.Unigrams, t.Phrases)
//	}
//
// Each pipeline stage (corpus building, mining, segmentation, topic
// modeling, visualisation) is also exposed separately for callers that
// need intermediate artifacts; see Result and the methods on its
// fields. All randomness is seeded: identical inputs and options give
// identical outputs.
package topmine

import (
	"fmt"
	"io"
	"sync"

	"topmine/internal/core"
	"topmine/internal/corpus"
	"topmine/internal/counter"
	"topmine/internal/phrasemine"
	"topmine/internal/segment"
	"topmine/internal/synth"
	"topmine/internal/topicmodel"
)

// Re-exported pipeline types. The implementation lives in internal
// packages; these aliases make every artifact nameable by API users.
type (
	// Corpus is a tokenised, stemmed, stop-word-filtered document
	// collection with a shared vocabulary.
	Corpus = corpus.Corpus
	// Document is one corpus document (a sequence of punctuation-
	// delimited segments).
	Document = corpus.Document
	// CorpusOptions controls raw-text preprocessing.
	CorpusOptions = corpus.BuildOptions
	// MinedPhrases is the output of frequent phrase mining (Alg. 1).
	MinedPhrases = phrasemine.Result
	// PhraseCount is one frequent phrase with its corpus count.
	PhraseCount = counter.Entry
	// SegmentedDoc is one document's partition into phrases (Alg. 2).
	SegmentedDoc = segment.SegmentedDoc
	// Model is a trained PhraseLDA (or LDA) topic model.
	Model = topicmodel.Model
	// TopicSummary is one topic's visualisation: top unigrams and top
	// phrases by topical frequency (Eq. 8).
	TopicSummary = topicmodel.TopicSummary
	// PhraseInfo is one ranked phrase in a topic summary.
	PhraseInfo = topicmodel.PhraseInfo
	// VisualizeOptions controls topic rendering (list lengths,
	// background-phrase filtering).
	VisualizeOptions = topicmodel.VisualizeOptions
	// HeldOut is a document-completion split for perplexity evaluation.
	HeldOut = corpus.HeldOut
)

// Options configures the full ToPMine pipeline.
type Options struct {
	// MinSupport is the minimum corpus frequency for a phrase (the
	// paper's ε). When RelativeSupport is set, the effective support is
	// max(MinSupport, RelativeSupport × corpus tokens), implementing
	// the paper's advice that support grow linearly with corpus size.
	MinSupport      int
	RelativeSupport float64
	// MaxPhraseLen bounds phrase length (0 = unbounded).
	MaxPhraseLen int
	// SigThreshold is the significance threshold α of Algorithm 2.
	SigThreshold float64
	// Topics is K, the number of latent topics.
	Topics int
	// Iterations is the number of collapsed Gibbs sweeps.
	Iterations int
	// Alpha and Beta are the Dirichlet priors (0 = 50/K and 0.01).
	Alpha, Beta float64
	// OptimizeHyper enables Minka fixed-point hyperparameter updates.
	OptimizeHyper bool
	// FilterBackground removes corpus-wide background phrases from the
	// topic visualisations (§8 of the paper).
	FilterBackground bool
	// TopUnigrams / TopPhrases bound the visualisation lists.
	TopUnigrams, TopPhrases int
	// Seed drives every random choice.
	Seed uint64
	// Workers parallelises corpus ingestion (Run/RunSource), mining
	// and segmentation (0 = GOMAXPROCS). It never changes any output.
	Workers int
	// TopicWorkers > 1 trains the topic model with the approximate
	// AD-LDA-style distributed sampler (see internal/topicmodel's
	// parallel notes): deterministic for a fixed worker count, held-out
	// quality comparable to the serial sampler, sweeps up to
	// TopicWorkers times faster. Workers accumulate sparse count deltas
	// into buffers reused across sweeps, so the per-sweep memory
	// overhead is O(cells touched by the worker's shard) — not the
	// O(V×K) per-worker count copy of earlier releases. 0 or 1 selects
	// the exact serial sampler (sparse bucketed Gibbs) used for all
	// paper-reproduction experiments.
	TopicWorkers int
}

// DefaultOptions mirrors the paper's configuration: ε=5 absolute
// support, α=5 significance, K=10 topics, 1000 sweeps, hyperparameter
// optimisation on.
func DefaultOptions() Options {
	return Options{
		MinSupport:    5,
		MaxPhraseLen:  8,
		SigThreshold:  5,
		Topics:        10,
		Iterations:    1000,
		OptimizeHyper: true,
		TopUnigrams:   10,
		TopPhrases:    10,
	}
}

// Normalize validates the options and substitutes the documented
// defaults for zero values (SigThreshold 0 → 5, Iterations 0 → 1000,
// …) — the same normalisation every Run/Train entry point applies
// internally. Callers that orchestrate pipeline stages individually
// (e.g. the CLI) normalise once up front so mining, segmentation and
// stored-artifact parameter matching all see identical effective
// values.
func (o *Options) Normalize() error { return o.fill() }

func (o *Options) fill() error {
	if o.Topics <= 0 {
		return fmt.Errorf("topmine: Topics must be positive, got %d", o.Topics)
	}
	if o.MinSupport <= 0 && o.RelativeSupport <= 0 {
		o.MinSupport = 5
	}
	if o.MaxPhraseLen < 0 {
		return fmt.Errorf("topmine: MaxPhraseLen must be >= 0")
	}
	// Negative priors are never meaningful: a negative significance
	// threshold accepts every adjacent merge (each candidate pair's
	// score starts at 0), and negative Dirichlet priors turn Gibbs
	// sampling weights negative, corrupting the categorical draw.
	// Reject them instead of training a silently broken model.
	if o.SigThreshold < 0 {
		return fmt.Errorf("topmine: SigThreshold must be >= 0 (0 selects the default 5), got %v", o.SigThreshold)
	}
	if o.Alpha < 0 {
		return fmt.Errorf("topmine: Alpha must be >= 0 (0 selects the default 50/K), got %v", o.Alpha)
	}
	if o.Beta < 0 {
		return fmt.Errorf("topmine: Beta must be >= 0 (0 selects the default 0.01), got %v", o.Beta)
	}
	if o.SigThreshold == 0 {
		o.SigThreshold = 5
	}
	if o.Iterations <= 0 {
		o.Iterations = 1000
	}
	if o.TopUnigrams <= 0 {
		o.TopUnigrams = 10
	}
	if o.TopPhrases <= 0 {
		o.TopPhrases = 10
	}
	return nil
}

// Result carries every artifact of a pipeline run.
type Result struct {
	// Corpus is the preprocessed input.
	Corpus *Corpus
	// Mined holds the frequent phrases and aggregate counts (Alg. 1).
	Mined *MinedPhrases
	// Segmented holds each document's phrase partition (Alg. 2).
	Segmented []*SegmentedDoc
	// Model is the trained PhraseLDA model.
	Model *Model
	// Topics are the rendered topic summaries.
	Topics []TopicSummary
	// Options echoes the (filled) options the pipeline ran with.
	Options Options

	// inferencer caches the serving-side view built on first use by
	// InferTopics/TraceText/Inferencer; see inferencer.go.
	inferMu sync.Mutex
	inferer *Inferencer

	// closer releases the resources the Result borrows — the mmap'd
	// corpus file backing Corpus when the Result came from
	// RunCorpusFile, nil otherwise.
	closer io.Closer
}

// Close releases any resources backing the Result — currently the
// corpus-file mapping when the Result was trained via RunCorpusFile.
// After Close, the Result's Corpus (and anything aliasing its token
// arena) must not be used; the trained Model, Topics and snapshots
// saved earlier remain valid. Close is a no-op for in-memory Results,
// idempotent, and safe to call concurrently (the swap under the lock
// guarantees the underlying reference is released exactly once).
func (r *Result) Close() error {
	r.inferMu.Lock()
	c := r.closer
	r.closer = nil
	r.inferMu.Unlock()
	if c == nil {
		return nil
	}
	return c.Close()
}

// Inferencer returns the concurrency-safe serving view of this result,
// building it on the first successful call and caching it. The
// returned Inferencer pre-builds the segmenter once, so it is the
// cheap path for repeated or concurrent inference. The view captures
// the Result's artifacts at first use: populate Corpus, Mined, and
// Model before calling, as later field mutation is not observed.
// Construction errors are not cached — a Result completed after a
// failed early call works on retry.
func (r *Result) Inferencer() (*Inferencer, error) {
	r.inferMu.Lock()
	defer r.inferMu.Unlock()
	if r.inferer != nil {
		return r.inferer, nil
	}
	inf, err := NewInferencer(r)
	if err != nil {
		return nil, err
	}
	r.inferer = inf
	return inf, nil
}

// FrequentPhrases lists mined phrases with at least minWords words,
// most frequent first.
func (r *Result) FrequentPhrases(minWords int) []PhraseCount {
	return r.Mined.Counts.Entries(minWords)
}

// PhraseString renders a mined phrase's words for display.
func (r *Result) PhraseString(p PhraseCount) string {
	return r.Corpus.DisplayWords(p.Words)
}

// Source yields raw documents one at a time — the streaming input to
// BuildCorpusFromSource and RunSource, letting corpora far larger than
// memory ingest without materialising a []string. A Source's Next
// returns ok=false with a nil error at end of input.
type Source = corpus.Source

// SliceSource adapts an in-memory document slice to a Source.
func SliceSource(docs []string) Source { return corpus.SliceSource(docs) }

// LineSource adapts a reader to a Source, one document per line (lines
// up to 16 MiB).
func LineSource(r io.Reader) Source { return corpus.LineSource(r) }

// JSONLSource adapts a JSON-lines reader to a Source, taking each
// object's given string field as the document text.
func JSONLSource(r io.Reader, field string) Source { return corpus.JSONLSource(r, field) }

// TSVSource adapts a tab-separated reader to a Source, taking the
// given zero-based column as the document text.
func TSVSource(r io.Reader, column int) Source { return corpus.TSVSource(r, column) }

// MaybeDecompress sniffs r's leading magic bytes and transparently
// decompresses gzip streams (multi-member files included), so
// compressed corpora feed LineSource/JSONLSource without a manual
// pipe. Plain input passes through buffered; zstd input returns an
// error suggesting `zstd -dc` (the standard library has no zstd
// reader). LoadCorpusFile and LoadCorpusJSONL already apply this.
func MaybeDecompress(r io.Reader) (io.Reader, error) { return corpus.MaybeDecompress(r) }

// BuildCorpus preprocesses raw documents (one string each) with the
// paper's pipeline: punctuation segmentation, lower-casing, stop-word
// removal with gap tracking, Porter stemming.
func BuildCorpus(docs []string, opt CorpusOptions) *Corpus {
	return corpus.FromStrings(docs, opt)
}

// BuildCorpusFromSource streams documents out of src into a corpus,
// tokenizing on opt.Workers goroutines (0 = all cores). Memory stays
// proportional to the built corpus — raw text is never accumulated —
// and the result is bit-identical to BuildCorpus over the same
// documents, for any worker count.
func BuildCorpusFromSource(src Source, opt CorpusOptions) (*Corpus, error) {
	return corpus.BuildFromSource(src, opt)
}

// DefaultCorpusOptions mirrors the paper's preprocessing.
func DefaultCorpusOptions() CorpusOptions { return corpus.DefaultBuildOptions() }

// LoadCorpusFile reads a one-document-per-line file.
func LoadCorpusFile(path string, opt CorpusOptions) (*Corpus, error) {
	return corpus.LoadFile(path, opt)
}

// LoadCorpusJSONL reads a JSON-lines file, taking each object's given
// string field as the document text (e.g. "text" for review dumps).
func LoadCorpusJSONL(path, field string, opt CorpusOptions) (*Corpus, error) {
	return corpus.LoadJSONLFile(path, field, opt)
}

// Run executes the full pipeline on raw documents.
func Run(docs []string, opt Options) (*Result, error) {
	return RunSource(SliceSource(docs), opt)
}

// RunSource executes the full pipeline on documents streamed from src,
// preprocessing them with DefaultCorpusOptions on opt.Workers cores.
// For a fixed seed the result is byte-identical to Run over the same
// documents, at any worker count.
func RunSource(src Source, opt Options) (*Result, error) {
	copt := DefaultCorpusOptions()
	copt.Workers = opt.Workers
	c, err := corpus.BuildFromSource(src, copt)
	if err != nil {
		return nil, err
	}
	return RunCorpus(c, opt)
}

// RunCorpus executes the full pipeline on a prebuilt corpus.
func RunCorpus(c *Corpus, opt Options) (*Result, error) {
	if err := opt.fill(); err != nil {
		return nil, err
	}
	a := core.Run(c, toCoreConfig(opt, nil))
	res := &Result{Corpus: c, Mined: a.Mined, Segmented: a.Segs, Model: a.Model, Options: opt}
	res.Topics = res.Model.Visualize(c, visualizeOptions(opt))
	return res, nil
}

// trainAndVisualize runs PhraseLDA over already-mined, already-
// segmented artifacts and renders the topics — the shared tail of
// RunCorpus and CorpusFile.Run. opt must be filled.
func trainAndVisualize(c *Corpus, mined *MinedPhrases, segs []*SegmentedDoc, opt Options) *Result {
	_, model := core.Train(c, segs, toCoreConfig(opt, nil))
	res := &Result{Corpus: c, Mined: mined, Segmented: segs, Model: model, Options: opt}
	res.Topics = model.Visualize(c, visualizeOptions(opt))
	return res
}

// visualizeOptions translates pipeline options into rendering options.
func visualizeOptions(opt Options) topicmodel.VisualizeOptions {
	vis := topicmodel.VisualizeOptions{
		TopUnigrams:      opt.TopUnigrams,
		TopPhrases:       opt.TopPhrases,
		FilterBackground: opt.FilterBackground,
	}
	if opt.FilterBackground {
		// Catch background phrases that collect in a dedicated topic
		// under the optimised asymmetric prior (see VisualizeOptions).
		vis.BackgroundMaxDocFrac = 0.25
	}
	return vis
}

// toCoreConfig translates public options into the framework config.
func toCoreConfig(opt Options, onIter func(int, *Model)) core.Config {
	return core.Config{
		MinSupport:      opt.MinSupport,
		RelativeSupport: opt.RelativeSupport,
		MaxPhraseLen:    opt.MaxPhraseLen,
		SigAlpha:        opt.SigThreshold,
		K:               opt.Topics,
		Iterations:      opt.Iterations,
		Alpha:           opt.Alpha,
		Beta:            opt.Beta,
		OptimizeHyper:   opt.OptimizeHyper,
		Seed:            opt.Seed,
		Workers:         opt.Workers,
		TopicWorkers:    opt.TopicWorkers,
		OnIteration:     onIter,
	}
}

// MinePhrases runs frequent phrase mining (Algorithm 1) alone.
func MinePhrases(c *Corpus, opt Options) *MinedPhrases {
	return core.Mine(c, toCoreConfig(opt, nil))
}

// SegmentCorpus runs phrase construction (Algorithm 2) alone.
func SegmentCorpus(c *Corpus, mined *MinedPhrases, opt Options) []*SegmentedDoc {
	return core.Segment(c, mined, toCoreConfig(opt, nil))
}

// TrainModel trains PhraseLDA on a segmented corpus.
func TrainModel(c *Corpus, segs []*SegmentedDoc, opt Options) *Model {
	return TrainModelWithCallback(c, segs, opt, nil)
}

// TrainModelWithCallback is TrainModel with a hook invoked after every
// Gibbs sweep (1-based iteration); used for perplexity curves.
func TrainModelWithCallback(c *Corpus, segs []*SegmentedDoc, opt Options, onIter func(int, *Model)) *Model {
	_, m := core.Train(c, segs, toCoreConfig(opt, onIter))
	return m
}

// TrainLDA trains an unconstrained LDA baseline on the same corpus
// (every token its own phrase) — the comparison model of Figures 6-7.
func TrainLDA(c *Corpus, opt Options) *Model {
	return TrainLDAWithCallback(c, opt, nil)
}

// TrainLDAWithCallback is TrainLDA with a per-sweep hook.
func TrainLDAWithCallback(c *Corpus, opt Options, onIter func(int, *Model)) *Model {
	if err := opt.fill(); err != nil {
		panic(err)
	}
	docs := topicmodel.DocsUnigram(c)
	if opt.TopicWorkers > 1 {
		return topicmodel.TrainParallel(docs, c.Vocab.Size(), toModelOptions(opt, onIter), opt.TopicWorkers)
	}
	return topicmodel.Train(docs, c.Vocab.Size(), toModelOptions(opt, onIter))
}

func toModelOptions(opt Options, onIter func(int, *Model)) topicmodel.Options {
	return topicmodel.Options{
		K:             opt.Topics,
		Alpha:         opt.Alpha,
		Beta:          opt.Beta,
		Iterations:    opt.Iterations,
		OptimizeHyper: opt.OptimizeHyper,
		Seed:          opt.Seed,
		OnIteration:   onIter,
	}
}

// SplitHeldOut withholds frac of each document's tokens for perplexity
// evaluation (document completion, as in Figures 6-7).
func SplitHeldOut(c *Corpus, frac float64) *HeldOut {
	return corpus.SplitDocumentCompletion(c, frac, 1)
}

// Perplexity scores held-out tokens under a trained model.
func Perplexity(m *Model, ho *HeldOut) float64 {
	return topicmodel.Perplexity(m, ho.Test)
}

// FormatTopics renders topic summaries as a text table.
func FormatTopics(topics []TopicSummary) string {
	return topicmodel.FormatTopics(topics)
}

// GenerateExampleCorpus produces a synthetic corpus in one of the
// built-in domains modelled on the paper's datasets: "dblp-titles",
// "20conf", "dblp-abstracts", "acl-abstracts", "ap-news",
// "yelp-reviews". It returns raw document strings ready for Run or
// BuildCorpus. See DESIGN.md §5 for why synthetic stand-ins are used.
func GenerateExampleCorpus(domain string, docs int, seed uint64) ([]string, error) {
	f, ok := synth.Domains()[domain]
	if !ok {
		return nil, fmt.Errorf("topmine: unknown domain %q", domain)
	}
	return synth.Generate(f(), synth.Options{Docs: docs, Seed: seed}), nil
}

// ExampleDomains lists the available synthetic domains.
func ExampleDomains() []string {
	return []string{"dblp-titles", "20conf", "dblp-abstracts",
		"acl-abstracts", "ap-news", "yelp-reviews"}
}
