package topmine

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func trainSmallResult(t *testing.T) *Result {
	t.Helper()
	docs, err := GenerateExampleCorpus("dblp-titles", 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Topics = 4
	opt.Iterations = 10
	opt.MinSupport = 3
	opt.Seed = 5
	opt.OptimizeHyper = false
	opt.Workers = 1
	res, err := Run(docs, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTrainingSnapshotRoundTrip(t *testing.T) {
	res := trainSmallResult(t)
	if !res.Resumable() {
		t.Fatal("freshly trained Result must be resumable")
	}
	var full, frozen bytes.Buffer
	if err := SaveTrainingSnapshot(&full, res); err != nil {
		t.Fatal(err)
	}
	if err := SaveSnapshot(&frozen, res); err != nil {
		t.Fatal(err)
	}
	if full.Len() <= frozen.Len() {
		t.Errorf("training snapshot (%d bytes) should exceed frozen snapshot (%d bytes)", full.Len(), frozen.Len())
	}

	loaded, err := LoadSnapshot(bytes.NewReader(full.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Resumable() {
		t.Fatal("training snapshot must load resumable")
	}
	// The training snapshot still serves: inference and topics work.
	if got := FormatTopics(loaded.Topics); got != FormatTopics(res.Topics) {
		t.Error("topics differ after training-snapshot round trip")
	}
	theta := loaded.InferTopics("frequent pattern mining", 10)
	if len(theta) != 4 {
		t.Fatalf("inference broken on training snapshot: %d topics", len(theta))
	}

	frozenLoaded, err := LoadSnapshot(bytes.NewReader(frozen.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if frozenLoaded.Resumable() {
		t.Fatal("frozen snapshot must not be resumable")
	}
	if err := frozenLoaded.ResumeTraining(5); err == nil {
		t.Fatal("ResumeTraining on a frozen snapshot must error")
	} else if !strings.Contains(err.Error(), "training state") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// TestResumeTrainingDeterministic pins the resume contract: loading
// the same training snapshot twice and sweeping the same number of
// iterations yields byte-identical topics, and the resumed model stays
// internally consistent.
func TestResumeTrainingDeterministic(t *testing.T) {
	res := trainSmallResult(t)
	path := filepath.Join(t.TempDir(), "train.tpm")
	if err := SaveTrainingSnapshotFile(path, res); err != nil {
		t.Fatal(err)
	}
	run := func() *Result {
		r, err := LoadSnapshotFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.ResumeTraining(7); err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	ta, tb := FormatTopics(a.Topics), FormatTopics(b.Topics)
	if ta != tb {
		t.Errorf("resumed training is not deterministic:\n%s\nvs\n%s", ta, tb)
	}
	if err := a.Model.CheckInvariants(); err != nil {
		t.Errorf("resumed model inconsistent: %v", err)
	}
	// Resuming must actually move the state: with only 10 original
	// sweeps the chain has not converged, so 7 more change the counts.
	if ta == FormatTopics(res.Topics) {
		t.Log("note: resumed topics identical to pre-resume topics (possible but unexpected)")
	}
	// A resumed Result can be re-saved both ways.
	if err := SaveTrainingSnapshotFile(filepath.Join(t.TempDir(), "resumed.tpm"), a); err != nil {
		t.Fatal(err)
	}
	if err := SaveSnapshotFile(filepath.Join(t.TempDir(), "frozen.tpm"), a); err != nil {
		t.Fatal(err)
	}
}

// TestResumeChain verifies multi-hop resumption: train → save-state →
// load+resume → save-state → load+resume, with the sampler staying
// valid at every hop (the CLI's -load -iters -save workflow).
func TestResumeChain(t *testing.T) {
	res := trainSmallResult(t)
	dir := t.TempDir()
	p1 := filepath.Join(dir, "s1.tpm")
	if err := SaveTrainingSnapshotFile(p1, res); err != nil {
		t.Fatal(err)
	}
	r1, err := LoadSnapshotFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.ResumeTraining(3); err != nil {
		t.Fatal(err)
	}
	p2 := filepath.Join(dir, "s2.tpm")
	if err := SaveTrainingSnapshotFile(p2, r1); err != nil {
		t.Fatal(err)
	}
	r2, err := LoadSnapshotFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.ResumeTraining(3); err != nil {
		t.Fatal(err)
	}
	if err := r2.Model.CheckInvariants(); err != nil {
		t.Fatalf("model inconsistent after two resume hops: %v", err)
	}
	if got := len(r2.Topics); got != 4 {
		t.Fatalf("topics lost across hops: %d", got)
	}
}

// TestResumeDropsCachedInferencer pins that inference observes the
// resumed counts, not the Inferencer captured before ResumeTraining.
func TestResumeDropsCachedInferencer(t *testing.T) {
	res := trainSmallResult(t)
	before, err := res.Inferencer()
	if err != nil {
		t.Fatal(err)
	}
	if err := res.ResumeTraining(5); err != nil {
		t.Fatal(err)
	}
	after, err := res.Inferencer()
	if err != nil {
		t.Fatal(err)
	}
	if before == after {
		t.Fatal("ResumeTraining must invalidate the cached Inferencer")
	}
}
