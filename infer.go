package topmine

import (
	"sort"

	"topmine/internal/segment"
	"topmine/internal/topicmodel"
)

// Span is a phrase instance within one segment: tokens [Start, End).
type Span = segment.Span

// MergeStep is one executed merge of the phrase-construction algorithm
// (the dendrogram levels of the paper's Figure 1).
type MergeStep = segment.MergeStep

// InferTopics folds unseen raw text into the trained model: the text
// is tokenized against the existing vocabulary (out-of-vocabulary
// words dropped), segmented into phrases with the mined statistics,
// and Gibbs-sampled against the frozen topic-word counts. It returns
// the inferred topic mixture. The Result is not modified.
//
// The heavy lifting delegates to the cached Inferencer, so repeated
// and concurrent calls share one pre-built segmenter.
func (r *Result) InferTopics(text string, iters int) []float64 {
	inf, err := r.Inferencer()
	if err != nil {
		panic(err)
	}
	return inf.InferTopics(text, iters)
}

// BestTopic returns the argmax topic of a mixture returned by
// InferTopics.
func BestTopic(theta []float64) int { return topicmodel.BestTopic(theta) }

// SegmentTrace is the phrase-construction history of one text segment:
// the display tokens, the merges in execution order with their
// significance scores, and the final phrases — everything needed to
// draw the paper's Figure 1 dendrogram.
type SegmentTrace struct {
	Tokens  []string
	Steps   []MergeStep
	Phrases []string
}

// TraceText segments unseen text with the mined statistics and records
// every merge, per segment. Like InferTopics it delegates to the
// cached Inferencer.
func (r *Result) TraceText(text string) []SegmentTrace {
	inf, err := r.Inferencer()
	if err != nil {
		panic(err)
	}
	return inf.TraceText(text)
}

// KSelection reports the held-out perplexity of each candidate topic
// count, sorted ascending by K.
type KSelection struct {
	K          []int
	Perplexity []float64
	BestK      int
}

// SelectTopics trains one model per candidate K on a document-
// completion split of the corpus and returns the K with the lowest
// held-out perplexity — a practical stand-in for the nonparametric
// topic-count estimation the paper's §8 proposes as future work.
// Mining and segmentation run once and are shared across candidates.
func SelectTopics(c *Corpus, ks []int, opt Options, holdout float64) (KSelection, error) {
	sel := KSelection{}
	if opt.Topics <= 0 && len(ks) > 0 && ks[0] > 0 {
		opt.Topics = ks[0] // Topics is overridden per candidate anyway
	}
	if err := opt.fill(); err != nil {
		return sel, err
	}
	if holdout <= 0 || holdout >= 1 {
		holdout = 0.2
	}
	ks = append([]int(nil), ks...)
	sort.Ints(ks)
	ho := SplitHeldOut(c, holdout)
	mined := MinePhrases(ho.Train, opt)
	segs := SegmentCorpus(ho.Train, mined, opt)
	best, bestPPL := 0, 0.0
	for _, k := range ks {
		o := opt
		o.Topics = k
		m := TrainModel(ho.Train, segs, o)
		ppl := Perplexity(m, ho)
		sel.K = append(sel.K, k)
		sel.Perplexity = append(sel.Perplexity, ppl)
		if best == 0 || ppl < bestPPL {
			best, bestPPL = k, ppl
		}
	}
	sel.BestK = best
	return sel, nil
}
