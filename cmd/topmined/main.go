// Command topmined serves a trained ToPMine pipeline snapshot over
// HTTP: topic inference, phrase segmentation, and topic listing.
//
// Usage:
//
//	topmine -synth yelp-reviews -k 10 -save model.tpm
//	topmined -model model.tpm -addr :8080
//
//	curl -s localhost:8080/v1/infer -d '{"text": "great food and service"}'
//	curl -s localhost:8080/v1/segment -d '{"text": "machine learning models"}'
//	curl -s localhost:8080/v1/topics
//
// The process drains in-flight requests on SIGINT/SIGTERM before
// exiting (bounded by -drain).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"topmine"
	"topmine/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("topmined: ")

	model := flag.String("model", "", "path to a pipeline snapshot written by topmine -save (required)")
	addr := flag.String("addr", ":8080", "listen address")
	iters := flag.Int("iters", 50, "default Gibbs sweeps per inference request")
	maxIters := flag.Int("max-iters", 500, "cap on per-request Gibbs sweeps (raised to -iters if lower)")
	maxBody := flag.Int64("max-body", 1<<20, "maximum request body bytes")
	maxBatch := flag.Int("max-batch", 256, "maximum documents per batched infer request")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
	flag.Parse()

	if *model == "" {
		flag.Usage()
		os.Exit(2)
	}

	res, err := topmine.LoadSnapshotFile(*model)
	if err != nil {
		log.Fatal(err)
	}
	inf, err := res.Inferencer()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("loaded %s: %d topics, %d stems, %d frequent phrases",
		*model, inf.NumTopics(), res.Corpus.Vocab.Size(), res.Mined.Counts.Len())

	handler := serve.New(inf, serve.Options{
		MaxBodyBytes: *maxBody,
		MaxBatch:     *maxBatch,
		DefaultIters: *iters,
		MaxIters:     *maxIters,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-stop:
		log.Printf("received %v, draining (up to %v)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
		log.Print("drained cleanly")
	}
}
