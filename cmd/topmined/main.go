// Command topmined serves trained ToPMine pipeline snapshots over
// HTTP: topic inference, phrase segmentation, topic listing, model
// management, and Prometheus metrics.
//
// Usage:
//
//	topmine -synth yelp-reviews -k 10 -save yelp.tpm
//	topmine -synth dblp-titles  -k 10 -save dblp.tpm
//
//	# one model (requests route to it by default)
//	topmined -model yelp.tpm -addr :8080
//
//	# several models: repeat -model (name=path, or a bare path whose
//	# basename becomes the name), or scan a directory of *.tpm files
//	topmined -model yelp=yelp.tpm -model dblp=dblp.tpm
//	topmined -models snapshots/ -default yelp
//
//	curl -s localhost:8080/v1/infer -d '{"text": "great food and service"}'
//	curl -s localhost:8080/v1/infer -d '{"text": "query optimization", "model": "dblp"}'
//	curl -s localhost:8080/v1/models
//	curl -s localhost:8080/metrics
//
// Models hot-reload from their snapshot paths without dropping
// requests: POST /v1/models/{name}/reload reloads one, SIGHUP reloads
// all. The process drains in-flight requests on SIGINT/SIGTERM before
// exiting (bounded by -drain).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"topmine/internal/serve"
)

// modelFlags collects repeated -model values ("name=path" or "path").
type modelFlags []string

func (m *modelFlags) String() string     { return strings.Join(*m, ", ") }
func (m *modelFlags) Set(v string) error { *m = append(*m, v); return nil }

// modelNameFromPath derives a registry name from a snapshot path: the
// basename without extension ("snapshots/yelp.tpm" -> "yelp"). Shared
// by the -model bare-path form and the -models dir scan so both derive
// identical names for the same file.
func modelNameFromPath(path string) string {
	base := filepath.Base(path)
	return strings.TrimSuffix(base, filepath.Ext(base))
}

// nameFor splits one -model value into its registry name and path. A
// value is treated as an explicit "name=path" binding only when the
// part before the first '=' is a plausible model name (non-empty, no
// path separators); otherwise the whole value is a bare path and the
// name derives from its basename. That keeps paths like
// "./run=2/yelp.tpm" working; a file literally named "a=b.tpm" parses
// as a binding — serve it via -models dir scan (which never splits)
// or an explicit name= prefix.
func nameFor(v string) (name, path string, err error) {
	if i := strings.IndexByte(v, '='); i > 0 && !strings.ContainsAny(v[:i], "/\\") {
		name, path = v[:i], v[i+1:]
		if path == "" {
			return "", "", fmt.Errorf("-model %q: want name=path", v)
		}
		return name, path, nil
	}
	return modelNameFromPath(v), v, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("topmined: ")

	var models modelFlags
	flag.Var(&models, "model", "snapshot to serve, as name=path or a bare path (basename becomes the name); repeatable")
	modelsDir := flag.String("models", "", "directory to scan for *.tpm snapshots (each file's basename becomes its model name)")
	defModel := flag.String("default", "", "model unnamed requests route to (default: first -model flag, or first scanned file)")
	addr := flag.String("addr", ":8080", "listen address")
	iters := flag.Int("iters", 50, "default sampling sweeps per inference request (each costs an equal burn-in on top)")
	maxIters := flag.Int("max-iters", 1000, "cap on per-request TOTAL Gibbs sweeps, burn-in + sampling (raised to 2×-iters if lower)")
	maxBody := flag.Int64("max-body", 1<<20, "maximum request body bytes")
	maxBatch := flag.Int("max-batch", 256, "maximum documents per batched infer request")
	cacheBytes := flag.Int64("cache-bytes", 32<<20, "exact response cache budget in bytes (0 disables)")
	adminToken := flag.String("admin-token", "", "bearer token required on admin endpoints (model reload); empty leaves them open")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "max time to read one request including its body (0 disables; header read is always bounded)")
	writeTimeout := flag.Duration("write-timeout", 5*time.Minute, "max time to serve one response; generous so max-size batches at high iteration counts still finish (0 disables)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "how long an idle keep-alive connection is kept open (0 disables)")
	warmLog := flag.String("warm-log", "", "newline-delimited access log to replay into the response cache on startup (plain text per line, or JSON {\"text\",\"model\",\"iters\",\"op\"}; -request-log output works directly)")
	requestLog := flag.String("request-log", "", "write one JSON line per request (latency breakdown: resolve/infer/marshal) to this file ('-' = stderr)")
	pprofFlag := flag.Bool("pprof", false, "mount Go's net/http/pprof profiling handlers under /debug/pprof/ on the serving port; "+
		"off by default because profiles expose internals (guard the port, or leave this off in untrusted networks)")
	flag.Parse()

	if len(models) == 0 && *modelsDir == "" {
		flag.Usage()
		os.Exit(2)
	}

	// Claim SIGHUP before the (possibly slow) snapshot loads: until
	// Notify runs, a HUP's default disposition terminates the process —
	// a signal documented as "reload" must never kill a starting
	// daemon. HUPs arriving during startup are buffered and handled
	// once the reload goroutine starts below.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)

	reg := serve.NewRegistry()
	for _, v := range models {
		name, path, err := nameFor(v)
		if err != nil {
			log.Fatal(err)
		}
		if err := reg.AddSnapshotFile(name, path); err != nil {
			log.Fatal(err)
		}
	}
	if *modelsDir != "" {
		paths, err := filepath.Glob(filepath.Join(*modelsDir, "*.tpm"))
		if err != nil {
			log.Fatal(err)
		}
		for _, path := range paths {
			// Scanned paths are never name=path bindings: the basename
			// (sans extension) is the name, even if it contains '='.
			// Unlike explicit -model flags, one bad scanned file (bad
			// name, corrupt snapshot, duplicate) must not take down
			// startup for every valid model next to it: warn and skip.
			name := modelNameFromPath(path)
			if name == "" {
				log.Printf("skipping %s: no model name derivable from basename", path)
				continue
			}
			if err := reg.AddSnapshotFile(name, path); err != nil {
				log.Printf("skipping %s: %v", path, err)
			}
		}
	}
	if reg.Len() == 0 {
		log.Fatal("no models loaded")
	}
	if *defModel != "" {
		if err := reg.SetDefault(*defModel); err != nil {
			log.Fatal(err)
		}
	}
	for _, name := range reg.Names() {
		e, _ := reg.Lookup(name)
		st := e.Inferencer().Stats()
		def := ""
		if name == reg.DefaultName() {
			def = " (default)"
		}
		log.Printf("loaded %s%s from %s: %d topics, %d stems, %d frequent phrases",
			name, def, e.Path(), st.Topics, st.VocabSize, st.Phrases)
	}

	cb := *cacheBytes
	if cb == 0 {
		cb = -1 // Options treats 0 as "use the default"; the flag's 0 means off.
	}
	var reqLog *os.File
	if *requestLog == "-" {
		reqLog = os.Stderr
	} else if *requestLog != "" {
		f, err := os.OpenFile(*requestLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		reqLog = f
	}
	opt := serve.Options{
		MaxBodyBytes: *maxBody,
		MaxBatch:     *maxBatch,
		DefaultIters: *iters,
		MaxIters:     *maxIters,
		CacheBytes:   cb,
		AdminToken:   *adminToken,
	}
	if reqLog != nil {
		opt.RequestLog = reqLog
	}
	handler := serve.NewWithRegistry(reg, opt)
	var root http.Handler = handler
	if *pprofFlag {
		// The serve mux owns "/" — mount pprof on an outer mux so the
		// API surface is untouched and only /debug/pprof/ is new.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		root = mux
		log.Print("pprof profiling enabled on /debug/pprof/")
	}
	// ReadHeaderTimeout alone leaves two ways for a misbehaving client
	// to pin a connection forever: trickling the request body after the
	// headers (ReadTimeout bounds that) and parking an idle keep-alive
	// connection (IdleTimeout bounds that). WriteTimeout stays generous
	// — a max-size batch at high iteration counts legitimately takes
	// minutes — but still finite so a dead peer cannot hold a handler's
	// goroutine for good.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           root,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	if *warmLog != "" {
		// Warm in the background: the port should accept traffic
		// immediately, with warming racing the first real requests
		// through the same cache and coalescing paths (never duplicating
		// their work).
		go func() {
			f, err := os.Open(*warmLog)
			if err != nil {
				log.Printf("warm-log: %v", err)
				return
			}
			defer f.Close()
			st, err := handler.WarmFromLog(f)
			if err != nil {
				log.Printf("warm-log: %v", err)
			}
			log.Printf("warm-log: %d lines: %d warmed, %d already cached, %d skipped, %d ignored",
				st.Lines, st.Warmed, st.Hits, st.Skipped, st.Ignored)
			for _, e := range st.Errors {
				log.Printf("warm-log: skipped: %s", e)
			}
		}()
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	go func() {
		for range hup {
			log.Print("SIGHUP: reloading all models")
			if err := reg.ReloadAll(); err != nil {
				log.Printf("reload: %v", err)
			} else {
				log.Print("reload complete")
			}
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-stop:
		log.Printf("received %v, draining (up to %v)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
		log.Print("drained cleanly")
	}
}
