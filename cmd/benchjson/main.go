// Command benchjson converts `go test -bench` text output into a
// stable JSON document, the format of the repository's performance
// trajectory artifacts (BENCH_*.json uploaded by CI). Each benchmark
// line becomes one record carrying every reported metric, so later
// runs can be diffed mechanically:
//
//	go test -run '^$' -bench . -benchmem ./internal/topicmodel | benchjson -out BENCH_topicmodel.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
)

// Record is one benchmark result.
type Record struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
	// Package labels the record when the input mixes several packages
	// (CI concatenates multiple `go test -bench` runs into one
	// artifact); omitted when the document-level Package applies.
	Package string `json:"package,omitempty"`
}

// Document is the archived artifact: environment header plus records.
// Package is set when every record came from one package; mixed-
// package inputs leave it empty and label each record instead.
type Document struct {
	Package string   `json:"package,omitempty"`
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Bench   []Record `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	in := flag.String("in", "", "benchmark output to read (default stdin)")
	out := flag.String("out", "", "JSON file to write (default stdout)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	doc, err := parse(r)
	if err != nil {
		log.Fatal(err)
	}
	if len(doc.Bench) == 0 {
		log.Fatal("no benchmark lines found in input")
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
}

// parse scans `go test -bench` output: header lines (goos/goarch/pkg/
// cpu) and benchmark result lines. Unknown lines are ignored, so the
// full `go test` output can be piped through unfiltered.
func parse(r io.Reader) (*Document, error) {
	doc := &Document{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			rec, ok := parseBench(line)
			if ok {
				rec.Package = pkg
				doc.Bench = append(doc.Bench, rec)
			}
		}
	}
	// One package: hoist the label to the document, as single-run
	// artifacts always did. Mixed packages: label every record so
	// concatenated runs stay attributable.
	uniform := true
	for _, rec := range doc.Bench {
		if rec.Package != doc.Bench[0].Package {
			uniform = false
			break
		}
	}
	if uniform && len(doc.Bench) > 0 {
		doc.Package = doc.Bench[0].Package
		for i := range doc.Bench {
			doc.Bench[i].Package = ""
		}
	}
	return doc, sc.Err()
}

// parseBench parses one result line:
//
//	BenchmarkSweep/K200/sparse-4  30  4287782 ns/op  5465205 tokens/s  0 B/op  0 allocs/op
func parseBench(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Record{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, false
	}
	rec := Record{
		Name:       trimProcSuffix(strings.TrimPrefix(fields[0], "Benchmark")),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Record{}, false
		}
		rec.Metrics[fields[i+1]] = v
	}
	if len(rec.Metrics) == 0 {
		return Record{}, false
	}
	return rec, true
}

// trimProcSuffix drops the trailing -GOMAXPROCS marker so names stay
// comparable across machines.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
