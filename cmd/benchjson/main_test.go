package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: topmine/internal/topicmodel
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSweep/K200/sparse-4         	      30	   4287782 ns/op	   5465205 tokens/s	       0 B/op	       0 allocs/op
BenchmarkSweepParallel/K200/workers2 	      10	  24281742 ns/op	   1206189 tokens/s	     176 B/op	       5 allocs/op
PASS
ok  	topmine/internal/topicmodel	0.632s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" ||
		doc.Package != "topmine/internal/topicmodel" ||
		!strings.Contains(doc.CPU, "Xeon") {
		t.Fatalf("header misparsed: %+v", doc)
	}
	if len(doc.Bench) != 2 {
		t.Fatalf("got %d records, want 2", len(doc.Bench))
	}
	r := doc.Bench[0]
	if r.Name != "Sweep/K200/sparse" {
		t.Fatalf("name = %q (GOMAXPROCS suffix must be trimmed)", r.Name)
	}
	if r.Iterations != 30 {
		t.Fatalf("iterations = %d", r.Iterations)
	}
	for unit, want := range map[string]float64{
		"ns/op": 4287782, "tokens/s": 5465205, "B/op": 0, "allocs/op": 0,
	} {
		if r.Metrics[unit] != want {
			t.Fatalf("metric %s = %v, want %v", unit, r.Metrics[unit], want)
		}
	}
	if doc.Bench[1].Name != "SweepParallel/K200/workers2" {
		t.Fatalf("second record name = %q", doc.Bench[1].Name)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	doc, err := parse(strings.NewReader("hello\nBenchmarkBad x y\nPASS\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Bench) != 0 {
		t.Fatalf("parsed %d records from noise", len(doc.Bench))
	}
}
