package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"topmine"
	"topmine/internal/obs"
)

// oneShotReader yields its content once and then fails hard on any
// further Read after EOF — modelling a pipe: rereading stdin is
// impossible, and any code path that tries must surface as an error
// rather than silently training on an empty corpus.
type oneShotReader struct {
	r     io.Reader
	done  bool
	reads int
}

func (o *oneShotReader) Read(p []byte) (int, error) {
	if o.done {
		return 0, fmt.Errorf("stdin reread detected: Read called after EOF")
	}
	n, err := o.r.Read(p)
	o.reads++
	if err == io.EOF {
		o.done = true
	}
	return n, err
}

func testStdinDocs() string {
	var b strings.Builder
	for i := 0; i < 40; i++ {
		b.WriteString("great food and friendly service, great food indeed.\n")
		b.WriteString("slow service and terrible food; never again.\n")
	}
	return b.String()
}

// testStdinDocs2 is a second, topically distinct shard for the
// living-corpus workflows.
func testStdinDocs2() string {
	var b strings.Builder
	for i := 0; i < 40; i++ {
		b.WriteString("fast shipping and careful packaging, fast shipping always.\n")
		b.WriteString("damaged box and missing parts; fast shipping cannot save this.\n")
	}
	return b.String()
}

// fastArgs keeps in-process pipeline runs quick.
func fastArgs(extra ...string) []string {
	return append([]string{"-k", "2", "-iters", "3", "-minsup", "2", "-top", "3"}, extra...)
}

// TestStdinReadOnce pins the satellite fix: `-input -` combined with
// -save and -infer must consume stdin exactly once — the infer path
// folds text into the in-memory result and must never touch stdin
// again.
func TestStdinReadOnce(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "model.tpm")
	stdin := &oneShotReader{r: strings.NewReader(testStdinDocs())}
	var stdout, stderr bytes.Buffer
	args := fastArgs("-input", "-", "-save", snap, "-infer", "great food")
	if err := run(args, stdin, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "inferred mixture") {
		t.Fatalf("no inference output:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "snapshot saved") {
		t.Fatalf("no snapshot confirmation:\n%s", stderr.String())
	}
	// Loading the snapshot back must not need stdin at all.
	stdin2 := &oneShotReader{r: strings.NewReader("")}
	stdin2.done = true // any read explodes
	var out2, err2 bytes.Buffer
	if err := run([]string{"-load", snap, "-infer", "terrible slow service"}, stdin2, &out2, &err2); err != nil {
		t.Fatalf("run -load: %v\nstderr:\n%s", err, err2.String())
	}
	if !strings.Contains(out2.String(), "best topic:") {
		t.Fatalf("no inference from loaded snapshot:\n%s", out2.String())
	}
}

// TestPreprocessAndTrainFromCorpusFile drives the .tpc workflow end to
// end through the CLI: preprocess once, then train from the corpus
// file with stored artifacts reused.
func TestPreprocessAndTrainFromCorpusFile(t *testing.T) {
	dir := t.TempDir()
	tpc := filepath.Join(dir, "corpus.tpc")
	stdin := &oneShotReader{r: strings.NewReader(testStdinDocs())}
	var out, errb bytes.Buffer
	if err := run(fastArgs("-input", "-", "-preprocess", tpc), stdin, &out, &errb); err != nil {
		t.Fatalf("preprocess: %v\nstderr:\n%s", err, errb.String())
	}
	if !strings.Contains(errb.String(), "corpus file saved") {
		t.Fatalf("no save confirmation:\n%s", errb.String())
	}

	var out2, errb2 bytes.Buffer
	if err := run(fastArgs("-corpus", tpc), strings.NewReader(""), &out2, &errb2); err != nil {
		t.Fatalf("train from corpus file: %v\nstderr:\n%s", err, errb2.String())
	}
	if !strings.Contains(errb2.String(), "reusing stored phrase mining") {
		t.Fatalf("stored artifacts not reused:\n%s", errb2.String())
	}
	if !strings.Contains(out2.String(), "Topic 0") {
		t.Fatalf("no topics printed:\n%s", out2.String())
	}

	// Different mining parameters must trigger a recompute, loudly.
	var out3, errb3 bytes.Buffer
	if err := run(fastArgs("-corpus", tpc, "-minsup", "3"), strings.NewReader(""), &out3, &errb3); err != nil {
		t.Fatalf("train with different params: %v", err)
	}
	if !strings.Contains(errb3.String(), "recomputing") {
		t.Fatalf("param mismatch not surfaced:\n%s", errb3.String())
	}
}

// TestResumeWorkflow drives -save-state / -load -iters -save through
// the CLI.
func TestResumeWorkflow(t *testing.T) {
	dir := t.TempDir()
	s1 := filepath.Join(dir, "s1.tpm")
	s2 := filepath.Join(dir, "s2.tpm")
	stdin := &oneShotReader{r: strings.NewReader(testStdinDocs())}
	var out, errb bytes.Buffer
	if err := run(fastArgs("-input", "-", "-save", s1, "-save-state"), stdin, &out, &errb); err != nil {
		t.Fatalf("train+save-state: %v\nstderr:\n%s", err, errb.String())
	}
	if !strings.Contains(errb.String(), "training snapshot") {
		t.Fatalf("no training-snapshot confirmation:\n%s", errb.String())
	}
	var out2, errb2 bytes.Buffer
	if err := run([]string{"-load", s1, "-iters", "4", "-save", s2}, strings.NewReader(""), &out2, &errb2); err != nil {
		t.Fatalf("resume: %v\nstderr:\n%s", err, errb2.String())
	}
	if !strings.Contains(errb2.String(), "resumed training") {
		t.Fatalf("resume not reported:\n%s", errb2.String())
	}
	// The frozen re-save must refuse a further resume.
	var out3, errb3 bytes.Buffer
	err := run([]string{"-load", s2, "-iters", "4"}, strings.NewReader(""), &out3, &errb3)
	if err == nil || !strings.Contains(err.Error(), "training state") {
		t.Fatalf("resume of a frozen snapshot should fail helpfully, got %v", err)
	}
}

// TestLivingCorpusWorkflow drives the living-corpus modes end to end
// through the CLI: -preprocess -sketch, -append (with and without
// -dedup), training from the grown file, -merge, and -load -update.
func TestLivingCorpusWorkflow(t *testing.T) {
	dir := t.TempDir()
	tpc := filepath.Join(dir, "c.tpc")

	// Preprocess shard 1, storing sketches for later dedup.
	stdin := &oneShotReader{r: strings.NewReader(testStdinDocs())}
	var out, errb bytes.Buffer
	if err := run(fastArgs("-input", "-", "-preprocess", tpc, "-sketch"), stdin, &out, &errb); err != nil {
		t.Fatalf("preprocess: %v\nstderr:\n%s", err, errb.String())
	}

	// Re-appending shard 1 with dedup must skip every document and log
	// the counted total.
	errb.Reset()
	stdin = &oneShotReader{r: strings.NewReader(testStdinDocs())}
	if err := run([]string{"-append", tpc, "-input", "-", "-dedup"}, stdin, &out, &errb); err != nil {
		t.Fatalf("dedup append: %v\nstderr:\n%s", err, errb.String())
	}
	if !strings.Contains(errb.String(), "skipped 80 near-duplicate documents") {
		t.Fatalf("skip total not logged:\n%s", errb.String())
	}
	if !strings.Contains(errb.String(), "appended 0 documents") {
		t.Fatalf("append count not logged:\n%s", errb.String())
	}

	// Appending a fresh shard grows the file.
	errb.Reset()
	stdin = &oneShotReader{r: strings.NewReader(testStdinDocs2())}
	if err := run([]string{"-append", tpc, "-input", "-", "-dedup"}, stdin, &out, &errb); err != nil {
		t.Fatalf("append: %v\nstderr:\n%s", err, errb.String())
	}
	if !strings.Contains(errb.String(), "appended 2 documents") {
		t.Fatalf("fresh shard not appended (the 78 repeats dedup within the batch):\n%s", errb.String())
	}

	// Training from the grown file surfaces the stale artifacts.
	var out2, errb2 bytes.Buffer
	if err := run(fastArgs("-corpus", tpc), strings.NewReader(""), &out2, &errb2); err != nil {
		t.Fatalf("train from grown file: %v\nstderr:\n%s", err, errb2.String())
	}
	if !strings.Contains(errb2.String(), "stored artifacts dropped") {
		t.Fatalf("stale artifacts not surfaced:\n%s", errb2.String())
	}
	if !strings.Contains(out2.String(), "Topic 0") {
		t.Fatalf("no topics printed:\n%s", out2.String())
	}

	// Merge two preprocessed shards.
	shard2 := filepath.Join(dir, "shard2.tpc")
	stdin = &oneShotReader{r: strings.NewReader(testStdinDocs2())}
	errb.Reset()
	if err := run(fastArgs("-input", "-", "-preprocess", shard2), stdin, &out, &errb); err != nil {
		t.Fatalf("preprocess shard 2: %v\nstderr:\n%s", err, errb.String())
	}
	shard1 := filepath.Join(dir, "shard1.tpc")
	stdin = &oneShotReader{r: strings.NewReader(testStdinDocs())}
	if err := run(fastArgs("-input", "-", "-preprocess", shard1), stdin, &out, &errb); err != nil {
		t.Fatalf("preprocess shard 1: %v\nstderr:\n%s", err, errb.String())
	}
	merged := filepath.Join(dir, "merged.tpc")
	errb.Reset()
	if err := run([]string{"-merge", merged, shard1, shard2}, strings.NewReader(""), &out, &errb); err != nil {
		t.Fatalf("merge: %v\nstderr:\n%s", err, errb.String())
	}
	if !strings.Contains(errb.String(), "merged 2 corpus files") {
		t.Fatalf("merge not reported:\n%s", errb.String())
	}

	// Incremental update: train shard 1 with state, update over the
	// grown file.
	snap := filepath.Join(dir, "m.tpm")
	var errb3 bytes.Buffer
	if err := run(fastArgs("-corpus", shard1, "-save", snap, "-save-state"), strings.NewReader(""), &out, &errb3); err != nil {
		t.Fatalf("train shard 1: %v\nstderr:\n%s", err, errb3.String())
	}
	var out4, errb4 bytes.Buffer
	if err := run([]string{"-load", snap, "-update", tpc, "-iters", "3"}, strings.NewReader(""), &out4, &errb4); err != nil {
		t.Fatalf("update: %v\nstderr:\n%s", err, errb4.String())
	}
	if !strings.Contains(errb4.String(), "updated training over") || !strings.Contains(errb4.String(), "(2 new)") {
		t.Fatalf("update not reported:\n%s", errb4.String())
	}
	if !strings.Contains(out4.String(), "Topic 0") {
		t.Fatalf("no topics printed after update:\n%s", out4.String())
	}
}

// freePort reserves an ephemeral port long enough to learn its number.
// The tiny race before the coordinator rebinds it is acceptable in
// tests.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserve port: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestDistributedCLIWorkflow drives -train-coordinator/-train-worker
// end to end through the CLI and pins the headline guarantee: the
// distributed run's stdout (the rendered topics) is byte-identical to
// an in-process -topic-workers run with the same worker count and
// seed.
func TestDistributedCLIWorkflow(t *testing.T) {
	dir := t.TempDir()
	tpc := filepath.Join(dir, "corpus.tpc")
	stdin := &oneShotReader{r: strings.NewReader(testStdinDocs())}
	var out, errb bytes.Buffer
	if err := run(fastArgs("-input", "-", "-preprocess", tpc), stdin, &out, &errb); err != nil {
		t.Fatalf("preprocess: %v\nstderr:\n%s", err, errb.String())
	}

	addr := freePort(t)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var wout, werr bytes.Buffer
			if err := run([]string{"-train-worker", addr, "-train-timeout", "30s"},
				strings.NewReader(""), &wout, &werr); err != nil {
				t.Errorf("worker %d: %v\nstderr:\n%s", i, err, werr.String())
			}
		}(i)
	}
	var dout, derr bytes.Buffer
	err := run(fastArgs("-corpus", tpc, "-train-coordinator", addr,
		"-train-workers", "2", "-train-timeout", "30s", "-v"),
		strings.NewReader(""), &dout, &derr)
	wg.Wait()
	if err != nil {
		t.Fatalf("coordinator: %v\nstderr:\n%s", err, derr.String())
	}
	if !strings.Contains(derr.String(), "distributed training:") {
		t.Fatalf("no training confirmation:\n%s", derr.String())
	}
	if !strings.Contains(derr.String(), "sweep ") {
		t.Fatalf("-v did not log sweep timings:\n%s", derr.String())
	}
	if !strings.Contains(dout.String(), "Topic 0") {
		t.Fatalf("no topics printed:\n%s", dout.String())
	}

	var pout, perr bytes.Buffer
	if err := run(fastArgs("-corpus", tpc, "-topic-workers", "2"),
		strings.NewReader(""), &pout, &perr); err != nil {
		t.Fatalf("in-process run: %v\nstderr:\n%s", err, perr.String())
	}
	if dout.String() != pout.String() {
		t.Fatalf("distributed topics differ from in-process -topic-workers 2:\n--- distributed ---\n%s\n--- in-process ---\n%s",
			dout.String(), pout.String())
	}
}

// TestDistributedCheckpointResumeCLI drives -checkpoint / -resume
// through the CLI: a coordinator run that checkpoints every sweep, then
// a -resume run over the final checkpoint. The resumed run replays zero
// sweeps (the checkpoint is at the schedule's end) and must render the
// byte-identical topics — the schedule flags stay off the resume
// command line, because the checkpoint owns them.
func TestDistributedCheckpointResumeCLI(t *testing.T) {
	dir := t.TempDir()
	tpc := filepath.Join(dir, "corpus.tpc")
	ck := filepath.Join(dir, "run.tpd")
	stdin := &oneShotReader{r: strings.NewReader(testStdinDocs())}
	var out, errb bytes.Buffer
	if err := run(fastArgs("-input", "-", "-preprocess", tpc), stdin, &out, &errb); err != nil {
		t.Fatalf("preprocess: %v\nstderr:\n%s", err, errb.String())
	}

	runDistributed := func(coordArgs []string) (string, string) {
		t.Helper()
		addr := freePort(t)
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				var wout, werr bytes.Buffer
				if err := run([]string{"-train-worker", addr, "-train-timeout", "30s"},
					strings.NewReader(""), &wout, &werr); err != nil {
					t.Errorf("worker %d: %v\nstderr:\n%s", i, err, werr.String())
				}
			}(i)
		}
		var dout, derr bytes.Buffer
		args := append([]string{"-train-coordinator", addr, "-train-workers", "2", "-train-timeout", "30s"}, coordArgs...)
		err := run(args, strings.NewReader(""), &dout, &derr)
		wg.Wait()
		if err != nil {
			t.Fatalf("coordinator %v: %v\nstderr:\n%s", coordArgs, err, derr.String())
		}
		return dout.String(), derr.String()
	}

	out1, err1 := runDistributed(append(fastArgs("-corpus", tpc), "-checkpoint", ck, "-checkpoint-every", "1", "-v"))
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}
	if !strings.Contains(err1, "checkpoint ") {
		t.Fatalf("-v did not log checkpoint timings:\n%s", err1)
	}
	// -minsup/-top must match the original run (they shape the corpus
	// rebuild and rendering); -k/-iters/-seed must NOT be passed — the
	// checkpoint carries the schedule.
	out2, err2 := runDistributed([]string{"-corpus", tpc, "-resume", ck, "-minsup", "2", "-top", "3"})
	if !strings.Contains(err2, "resumed from") {
		t.Fatalf("resume not reported:\n%s", err2)
	}
	if out1 != out2 {
		t.Fatalf("resumed topics differ from the original run:\n--- original ---\n%s\n--- resumed ---\n%s", out1, out2)
	}
}

// TestDistributedObservabilityCLI drives -train-http and -trace
// end to end: a distributed run with the status plane and trace log on
// must print byte-identical topics to one with them off, the plane
// must answer live scrapes mid-run, and the trace file must replay as
// one JSON event per sweep plus a finish marker.
func TestDistributedObservabilityCLI(t *testing.T) {
	dir := t.TempDir()
	tpc := filepath.Join(dir, "corpus.tpc")
	traceFile := filepath.Join(dir, "trace.jsonl")
	stdin := &oneShotReader{r: strings.NewReader(testStdinDocs())}
	var out, errb bytes.Buffer
	if err := run(fastArgs("-input", "-", "-preprocess", tpc), stdin, &out, &errb); err != nil {
		t.Fatalf("preprocess: %v\nstderr:\n%s", err, errb.String())
	}

	runDistributed := func(coordArgs ...string) (string, string) {
		t.Helper()
		addr := freePort(t)
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				var wout, werr bytes.Buffer
				if err := run([]string{"-train-worker", addr, "-train-timeout", "30s"},
					strings.NewReader(""), &wout, &werr); err != nil {
					t.Errorf("worker %d: %v\nstderr:\n%s", i, err, werr.String())
				}
			}(i)
		}
		var dout, derr bytes.Buffer
		args := append([]string{"-corpus", tpc, "-train-coordinator", addr,
			"-train-workers", "2", "-train-timeout", "30s",
			"-k", "2", "-iters", "400", "-minsup", "2", "-top", "3"}, coordArgs...)
		err := run(args, strings.NewReader(""), &dout, &derr)
		wg.Wait()
		if err != nil {
			t.Fatalf("coordinator %v: %v\nstderr:\n%s", coordArgs, err, derr.String())
		}
		return dout.String(), derr.String()
	}

	plain, _ := runDistributed()

	statusAddr := freePort(t)
	done := make(chan struct{})
	type scrapeResult struct {
		progress int
		metrics  int
		training int // metrics bodies carrying topmine_train_ series
	}
	scraped := make(chan scrapeResult, 1)
	go func() {
		var res scrapeResult
		defer func() { scraped <- res }()
		client := &http.Client{Timeout: 2 * time.Second}
		for {
			select {
			case <-done:
				return
			default:
			}
			if resp, err := client.Get("http://" + statusAddr + "/v1/progress"); err == nil {
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				var p topmine.TrainingProgress
				if err := json.Unmarshal(body, &p); err != nil {
					t.Errorf("/v1/progress did not decode: %v: %s", err, body)
					return
				}
				res.progress++
			}
			if resp, err := client.Get("http://" + statusAddr + "/metrics"); err == nil {
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err := obs.Lint(body); err != nil {
					t.Errorf("/metrics did not parse back: %v", err)
					return
				}
				res.metrics++
				if bytes.Contains(body, []byte("topmine_train_sweep")) {
					res.training++
				}
			}
		}
	}()

	traced, derr := runDistributed("-train-http", statusAddr, "-trace", traceFile)
	close(done)
	res := <-scraped
	if !strings.Contains(derr, "training status plane on http://"+statusAddr) {
		t.Fatalf("status plane not announced:\n%s", derr)
	}
	if res.progress == 0 || res.metrics == 0 {
		t.Fatalf("no live scrapes landed mid-run (progress %d, metrics %d)", res.progress, res.metrics)
	}
	if res.training == 0 {
		t.Fatalf("%d live /metrics scrapes, none carrying topmine_train_ series", res.metrics)
	}

	if traced != plain {
		t.Fatalf("observability changed the trained topics:\n--- plain ---\n%s\n--- traced ---\n%s", plain, traced)
	}

	raw, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatalf("trace log: %v", err)
	}
	sweeps, finishes := 0, 0
	for i, line := range bytes.Split(bytes.TrimRight(raw, "\n"), []byte("\n")) {
		var ev struct {
			Ev string `json:"ev"`
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("trace line %d: %v: %s", i+1, err, line)
		}
		switch ev.Ev {
		case "sweep":
			sweeps++
		case "finish":
			finishes++
		}
	}
	if sweeps != 400 || finishes != 1 {
		t.Fatalf("trace has %d sweep and %d finish events, want 400 and 1", sweeps, finishes)
	}
}

func TestBadFlagCombos(t *testing.T) {
	cases := [][]string{
		{"-input", "x", "-synth", "yelp-reviews"},
		{"-jsonl", "text"},
		{"-corpus", "x.tpc", "-input", "y"},
		{"-preprocess", "out.tpc", "-save", "m.tpm", "-input", "-"},
		{"-save-state", "-input", "-"},
		{"-load", "m.tpm", "-k", "5"},
		{"-corpus", "x.tpc", "-docs", "100"},
		{"-merge", "out.tpc", "-input", "x"},
		{"-merge", "out.tpc", "only-one.tpc"},
		{"-append", "c.tpc", "-k", "5", "-input", "x"},
		{"-append", "c.tpc"},
		{"-dedup", "-input", "x"},
		{"-sketch", "-input", "-"},
		{"-update", "c.tpc", "-input", "x"},
		{"-train-worker", ":0", "-append", "c.tpc"},
		{"-train-worker", ":0", "-k", "5"},
		{"-train-worker", ":0", "-train-workers", "2"},
		{"-train-workers", "2"},
		{"-train-coordinator", ":0"},
		{"-train-coordinator", ":0", "-corpus", "x.tpc", "-topic-workers", "2"},
		{"-train-coordinator", ":0", "-corpus", "x.tpc", "-update", "m.tpc"},
		{"-train-coordinator", ":0", "-corpus", "x.tpc", "-input", "y"},
		{"-train-coordinator", ":0", "-corpus", "x.tpc", "-load", "m.tpm"},
		{"-train-coordinator", ":0", "-corpus", "x.tpc", "-train-workers", "0"},
		{"-checkpoint", "x.tpd"},
		{"-checkpoint-every", "5"},
		{"-resume", "x.tpd"},
		{"-elastic"},
		{"-train-http", "127.0.0.1:0"},
		{"-trace", "trace.jsonl"},
		{"-train-worker", ":0", "-train-http", "127.0.0.1:0"},
		{"-train-worker", ":0", "-trace", "trace.jsonl"},
		{"-train-reconnect", "5s"},
		{"-train-worker", ":0", "-checkpoint", "x.tpd"},
		{"-train-coordinator", ":0", "-corpus", "x.tpc", "-train-workers", "2", "-checkpoint-every", "5"},
		{"-train-coordinator", ":0", "-corpus", "x.tpc", "-train-workers", "2", "-resume", "x.tpd", "-k", "5"},
		{"-train-coordinator", ":0", "-corpus", "x.tpc", "-train-workers", "2", "-resume", "x.tpd", "-iters", "9"},
	}
	for _, args := range cases {
		if err := run(args, strings.NewReader(""), io.Discard, io.Discard); err == nil {
			t.Errorf("args %v: expected an error", args)
		}
	}
}
