// Command topmine runs the full ToPMine pipeline on a text corpus (one
// document per line) or a built-in synthetic domain, and prints the
// mined phrases and topical phrase visualisation.
//
// Usage:
//
//	topmine -input corpus.txt -k 10 -iters 1000
//	topmine -input reviews.jsonl -jsonl text -k 10
//	zcat corpus.txt.gz | topmine -input - -k 10
//	topmine -synth yelp-reviews -docs 2000 -k 10
//
// A trained run can be persisted as a pipeline snapshot and reused
// without retraining (by this command or by the topmined server):
//
//	topmine -synth yelp-reviews -k 10 -save model.tpm
//	topmine -load model.tpm -infer "great food and friendly service"
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"topmine"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("topmine: ")

	input := flag.String("input", "", "path to corpus file, one document per line ('-' reads stdin)")
	jsonlField := flag.String("jsonl", "", "treat -input as JSON lines and take document text from this field")
	synthDomain := flag.String("synth", "", "generate a synthetic corpus instead: "+
		strings.Join(topmine.ExampleDomains(), ", "))
	docs := flag.Int("docs", 2000, "documents to generate with -synth")
	k := flag.Int("k", 10, "number of topics")
	iters := flag.Int("iters", 1000, "Gibbs iterations")
	minSupport := flag.Int("minsup", 5, "minimum phrase support (epsilon)")
	relSupport := flag.Float64("relsup", 0, "relative support as a fraction of corpus tokens (overrides -minsup when larger)")
	sig := flag.Float64("alpha", 5, "significance threshold for merging (Algorithm 2)")
	maxLen := flag.Int("maxlen", 8, "maximum phrase length (0 = unbounded)")
	seed := flag.Uint64("seed", 42, "random seed")
	workers := flag.Int("workers", 0, "parallel workers for ingest/mining/segmentation (0 = all cores)")
	topicWorkers := flag.Int("topic-workers", 0, "parallel Gibbs workers for topic training (approximate AD-LDA sampler, "+
		"deterministic per worker count, O(touched cells) extra memory per sweep; 0/1 = exact serial sparse sampler)")
	topN := flag.Int("top", 10, "phrases and unigrams to display per topic")
	noHyper := flag.Bool("nohyper", false, "disable hyperparameter optimisation")
	filterBG := flag.Bool("filterbg", false, "filter background phrases from topic lists")
	phrasesOnly := flag.Bool("phrases-only", false, "stop after phrase mining and print frequent phrases")
	segmentOnly := flag.Bool("segment", false, "stop after segmentation and print each document as a bag of phrases")
	saveModel := flag.String("save", "", "save the trained pipeline snapshot to this path")
	loadModel := flag.String("load", "", "load a pipeline snapshot instead of training")
	inferText := flag.String("infer", "", "infer the topic mixture of this text (after training, or against -load)")
	inferIters := flag.Int("infer-iters", 50, "Gibbs sweeps for -infer")
	flag.Parse()

	if *loadModel != "" {
		// -load replaces training entirely: reject explicitly-set
		// training flags instead of silently ignoring them.
		allowed := map[string]bool{"load": true, "save": true, "infer": true, "infer-iters": true}
		var ignored []string
		flag.Visit(func(f *flag.Flag) {
			if !allowed[f.Name] {
				ignored = append(ignored, "-"+f.Name)
			}
		})
		if len(ignored) > 0 {
			log.Fatalf("-load replaces training; %s would be ignored", strings.Join(ignored, ", "))
		}
		runLoaded(*loadModel, *saveModel, *inferText, *inferIters)
		return
	}
	if (*phrasesOnly || *segmentOnly) && (*saveModel != "" || *inferText != "") {
		log.Fatal("-save and -infer need a trained model; do not combine them with -phrases-only or -segment")
	}

	var (
		c   *topmine.Corpus
		err error
	)
	switch {
	case *input != "" && *synthDomain != "":
		log.Fatal("use either -input or -synth, not both")
	case *jsonlField != "" && *input == "":
		log.Fatal("-jsonl needs -input")
	case *input != "":
		c, err = loadInput(*input, *jsonlField, *workers)
		if err != nil {
			log.Fatal(err)
		}
	case *synthDomain != "":
		raw, gerr := topmine.GenerateExampleCorpus(*synthDomain, *docs, *seed)
		if gerr != nil {
			log.Fatal(gerr)
		}
		copt := topmine.DefaultCorpusOptions()
		copt.Workers = *workers
		c, err = topmine.BuildCorpusFromSource(topmine.SliceSource(raw), copt)
		if err != nil {
			log.Fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "corpus: %v\n", c.ComputeStats())

	opt := topmine.DefaultOptions()
	opt.Topics = *k
	opt.Iterations = *iters
	opt.MinSupport = *minSupport
	opt.RelativeSupport = *relSupport
	opt.SigThreshold = *sig
	opt.MaxPhraseLen = *maxLen
	opt.Seed = *seed
	opt.Workers = *workers
	opt.TopicWorkers = *topicWorkers
	opt.TopPhrases = *topN
	opt.TopUnigrams = *topN
	opt.OptimizeHyper = !*noHyper
	opt.FilterBackground = *filterBG

	t0 := time.Now()
	mined := topmine.MinePhrases(c, opt)
	fmt.Fprintf(os.Stderr, "phrase mining: %v (%d frequent phrases, support %d, longest %d)\n",
		time.Since(t0).Round(time.Millisecond), mined.Counts.Len(), mined.MinSupport, mined.MaxPhraseLen)

	if *phrasesOnly {
		for _, p := range mined.Counts.Entries(2) {
			fmt.Printf("%8d  %s\n", p.Count, c.DisplayWords(p.Words))
		}
		return
	}

	t0 = time.Now()
	segs := topmine.SegmentCorpus(c, mined, opt)
	fmt.Fprintf(os.Stderr, "segmentation: %v\n", time.Since(t0).Round(time.Millisecond))

	if *segmentOnly {
		for _, sd := range segs {
			d := c.Docs[sd.DocID]
			for si, spans := range sd.Spans {
				seg := &d.Segments[si]
				for _, sp := range spans {
					fmt.Printf("[%s] ", c.DisplayPhrase(seg, sp.Start, sp.End))
				}
			}
			fmt.Println()
		}
		return
	}

	t0 = time.Now()
	model := topmine.TrainModel(c, segs, opt)
	fmt.Fprintf(os.Stderr, "topic modeling: %v (%d sweeps)\n",
		time.Since(t0).Round(time.Millisecond), *iters)

	sums := model.Visualize(c, topmine.VisualizeOptions{
		TopUnigrams: *topN, TopPhrases: *topN, FilterBackground: *filterBG,
	})
	fmt.Print(topmine.FormatTopics(sums))

	res := &topmine.Result{
		Corpus: c, Mined: mined, Segmented: segs,
		Model: model, Topics: sums, Options: opt,
	}
	if *saveModel != "" {
		if err := topmine.SaveSnapshotFile(*saveModel, res); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "snapshot saved to %s\n", *saveModel)
	}
	if *inferText != "" {
		printInference(res, *inferText, *inferIters)
	}
}

// loadInput streams the corpus off disk (or stdin when path is "-"),
// tokenizing on all requested cores; raw text is never accumulated, so
// multi-GB inputs ingest in memory proportional to their token count.
func loadInput(path, jsonlField string, workers int) (*topmine.Corpus, error) {
	r := io.Reader(os.Stdin)
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var src topmine.Source
	if jsonlField != "" {
		src = topmine.JSONLSource(r, jsonlField)
	} else {
		src = topmine.LineSource(r)
	}
	opt := topmine.DefaultCorpusOptions()
	opt.Workers = workers
	return topmine.BuildCorpusFromSource(src, opt)
}

// runLoaded consumes a snapshot: prints its topics, re-saves it when
// savePath is given (refreshing the file in the current format), and
// when text is given, folds it into the model and reports the
// inferred mixture.
func runLoaded(path, savePath, text string, iters int) {
	res, err := topmine.LoadSnapshotFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "snapshot %s: %d topics, %d stems, %d frequent phrases\n",
		path, res.Options.Topics, res.Corpus.Vocab.Size(), res.Mined.Counts.Len())
	fmt.Print(topmine.FormatTopics(res.Topics))
	if savePath != "" {
		if err := topmine.SaveSnapshotFile(savePath, res); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "snapshot saved to %s\n", savePath)
	}
	if text != "" {
		printInference(res, text, iters)
	}
}

// printInference folds text into the trained model and reports the
// mixture.
func printInference(res *topmine.Result, text string, iters int) {
	theta := res.InferTopics(text, iters)
	fmt.Printf("\ninferred mixture for %q:\n", text)
	for k, v := range theta {
		fmt.Printf("  topic %d: %.4f\n", k, v)
	}
	fmt.Printf("best topic: %d\n", topmine.BestTopic(theta))
}
