// Command topmine runs the full ToPMine pipeline on a text corpus (one
// document per line) or a built-in synthetic domain, and prints the
// mined phrases and topical phrase visualisation.
//
// Usage:
//
//	topmine -input corpus.txt -k 10 -iters 1000
//	topmine -input reviews.jsonl -jsonl text -k 10
//	topmine -input corpus.txt.gz -k 10            # gzip auto-detected
//	zcat corpus.txt.gz | topmine -input - -k 10
//	topmine -synth yelp-reviews -docs 2000 -k 10
//
// Preprocessing (ingest, phrase mining, segmentation) can run once and
// be persisted as a .tpc corpus file; later training jobs mmap it and
// skip straight to Gibbs sampling:
//
//	topmine -input reviews.jsonl -jsonl text -preprocess reviews.tpc
//	topmine -corpus reviews.tpc -k 10 -iters 1000
//	topmine -corpus reviews.tpc -k 40 -seed 7 -save k40.tpm
//
// A stored corpus is a living index: it can grow in place, merge with
// independently preprocessed shards, and feed incremental training of
// an existing snapshot:
//
//	topmine -append reviews.tpc -input fresh.jsonl -jsonl text -dedup
//	topmine -merge all.tpc shard1.tpc shard2.tpc shard3.tpc
//	topmine -load model.tpm -update reviews.tpc -iters 200 -save model2.tpm -save-state
//
// A trained run can be persisted as a pipeline snapshot and reused
// without retraining (by this command or by the topmined server); with
// -save-state the snapshot keeps the full Gibbs state so training can
// continue later:
//
//	topmine -synth yelp-reviews -k 10 -save model.tpm
//	topmine -load model.tpm -infer "great food and friendly service"
//	topmine -synth yelp-reviews -k 10 -save model.tpm -save-state
//	topmine -load model.tpm -iters 500 -save model2.tpm -save-state
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"topmine"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("topmine: ")
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // -h/-help: usage already printed, exit 0
		}
		if errors.Is(err, errUsage) {
			os.Exit(2) // flag package already printed the complaint
		}
		log.Fatal(err)
	}
}

// errUsage marks a bad flag combination; main exits 2 without the
// "topmine:" error prefix duplicating what the flag package printed.
var errUsage = errors.New("usage error")

// run is the whole command behind an injectable stdin/stdout/stderr,
// so tests can drive every flag combination in-process — in particular
// the pin that `-input -` consumes stdin exactly once regardless of
// -save/-infer. All corpus input flows through the reader passed here;
// nothing else may touch os.Stdin.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("topmine", flag.ContinueOnError)
	fs.SetOutput(stderr)

	input := fs.String("input", "", "path to corpus file, one document per line ('-' reads stdin; .gz auto-detected)")
	jsonlField := fs.String("jsonl", "", "treat -input as JSON lines and take document text from this field")
	synthDomain := fs.String("synth", "", "generate a synthetic corpus instead: "+
		strings.Join(topmine.ExampleDomains(), ", "))
	docs := fs.Int("docs", 2000, "documents to generate with -synth")
	corpusFile := fs.String("corpus", "", "train from this preprocessed .tpc corpus file (mmap; skips ingest/mining/segmentation)")
	preprocess := fs.String("preprocess", "", "preprocess only: write the corpus, mined phrases and segmentation to this .tpc file and exit")
	appendPath := fs.String("append", "", "grow this .tpc corpus file in place with the documents from -input/-synth and exit")
	dedup := fs.Bool("dedup", false, "with -append: skip incoming documents that near-duplicate a stored (or earlier-in-batch) one")
	dedupThreshold := fs.Float64("dedup-threshold", 0.9, "with -append -dedup: estimated Jaccard similarity at or above which a document is skipped")
	sketch := fs.Bool("sketch", false, "with -preprocess/-append: store per-document min-hash sketches so later -append -dedup runs compare against the stored corpus without retokenizing it")
	mergePath := fs.String("merge", "", "merge the positional .tpc source files (2 or more) into this new .tpc file and exit")
	updatePath := fs.String("update", "", "with -load: continue training the snapshot incrementally over this grown .tpc corpus file")
	k := fs.Int("k", 10, "number of topics")
	iters := fs.Int("iters", 1000, "Gibbs iterations (with -load: continue training this many sweeps)")
	minSupport := fs.Int("minsup", 5, "minimum phrase support (epsilon)")
	relSupport := fs.Float64("relsup", 0, "relative support as a fraction of corpus tokens (overrides -minsup when larger)")
	sig := fs.Float64("alpha", 5, "significance threshold for merging (Algorithm 2)")
	maxLen := fs.Int("maxlen", 8, "maximum phrase length (0 = unbounded)")
	seed := fs.Uint64("seed", 42, "random seed")
	workers := fs.Int("workers", 0, "parallel workers for ingest/mining/segmentation (0 = all cores)")
	topicWorkers := fs.Int("topic-workers", 0, "parallel Gibbs workers for topic training (approximate AD-LDA sampler, "+
		"deterministic per worker count, O(touched cells) extra memory per sweep; 0/1 = exact serial sparse sampler)")
	trainCoordinator := fs.String("train-coordinator", "", "coordinate distributed training: listen on this address (host:port) "+
		"for -train-workers worker processes, then train over the -corpus file; byte-identical to -topic-workers with the same worker count")
	trainWorkers := fs.Int("train-workers", 2, "with -train-coordinator: worker processes to wait for")
	trainWorker := fs.String("train-worker", "", "serve one distributed training job as a worker: connect to the coordinator "+
		"at this address (-corpus overrides the coordinator-sent corpus path) and exit when training completes")
	trainTimeout := fs.Duration("train-timeout", 0, "distributed training barrier timeout; with -train-coordinator also bounds "+
		"the wait for workers to connect (0 = defaults: 120s barriers, 60s accept)")
	trainCheckpoint := fs.String("checkpoint", "", "with -train-coordinator: atomically rewrite a CRC-checked .tpd barrier checkpoint "+
		"at this path every -checkpoint-every sweeps; a dead run restarts from it with -resume")
	trainCkptEvery := fs.Int("checkpoint-every", 0, "with -checkpoint: sweeps between checkpoint writes (0 = 50)")
	trainResume := fs.String("resume", "", "with -train-coordinator: resume a dead run from this .tpd checkpoint with any worker count; "+
		"the training schedule and sampler state come from the checkpoint, the mining flags must match the original run")
	trainElastic := fs.Bool("elastic", false, "with -train-coordinator: survive lost workers by rolling back to the last barrier "+
		"snapshot, re-accepting replacements and re-sharding instead of failing the run")
	trainReconnect := fs.Duration("train-reconnect", 0, "with -train-worker: re-dial a lost coordinator for up to this long instead "+
		"of exiting, so a worker fleet rides out a coordinator restart with -resume (0 = exit on coordinator loss)")
	trainHTTP := fs.String("train-http", "", "with -train-coordinator: serve a live training status plane on this address "+
		"(host:port): Prometheus /metrics, /v1/progress JSON and /debug/pprof/; purely observational, the trained model is unchanged")
	trainTrace := fs.String("trace", "", "with -train-coordinator: append one JSON event per sweep, worker delta, checkpoint and "+
		"recovery to this file; replay it with toptrace for a barrier timeline with straggler attribution")
	verbose := fs.Bool("v", false, "verbose training logs: per-sweep sample/reconcile timing for parallel (-topic-workers) and distributed training")
	topN := fs.Int("top", 10, "phrases and unigrams to display per topic")
	noHyper := fs.Bool("nohyper", false, "disable hyperparameter optimisation")
	filterBG := fs.Bool("filterbg", false, "filter background phrases from topic lists")
	phrasesOnly := fs.Bool("phrases-only", false, "stop after phrase mining and print frequent phrases")
	segmentOnly := fs.Bool("segment", false, "stop after segmentation and print each document as a bag of phrases")
	saveModel := fs.String("save", "", "save the trained pipeline snapshot to this path")
	saveState := fs.Bool("save-state", false, "make -save keep the full Gibbs training state so -load -iters can continue training")
	loadModel := fs.String("load", "", "load a pipeline snapshot instead of training")
	inferText := fs.String("infer", "", "infer the topic mixture of this text (after training, or against -load)")
	inferIters := fs.Int("infer-iters", 50, "Gibbs sweeps for -infer")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		// The FlagSet already printed the complaint and usage to
		// stderr; wrapping in errUsage keeps main from printing the
		// same message a second time via log.Fatal.
		return errUsage
	}

	if *saveState && *saveModel == "" {
		return fmt.Errorf("-save-state needs -save")
	}
	if *trainWorker != "" {
		// A worker has no say over training parameters — it receives
		// everything from the coordinator — so any pipeline flag here is
		// a misunderstanding worth failing loudly on.
		allowed := map[string]bool{"train-worker": true, "train-timeout": true,
			"train-reconnect": true, "corpus": true, "v": true}
		var ignored []string
		fs.Visit(func(f *flag.Flag) {
			if !allowed[f.Name] {
				ignored = append(ignored, "-"+f.Name)
			}
		})
		if len(ignored) > 0 {
			return fmt.Errorf("-train-worker receives all training parameters from the coordinator; %s would be ignored", strings.Join(ignored, ", "))
		}
		return runTrainWorker(*trainWorker, *corpusFile, *trainTimeout, *trainReconnect, stderr)
	}
	if flagWasSet(fs, "train-workers") && *trainCoordinator == "" {
		return fmt.Errorf("-train-workers needs -train-coordinator")
	}
	for _, name := range []string{"checkpoint", "checkpoint-every", "resume", "elastic", "train-http", "trace"} {
		if flagWasSet(fs, name) && *trainCoordinator == "" {
			return fmt.Errorf("-%s needs -train-coordinator", name)
		}
	}
	if flagWasSet(fs, "train-reconnect") {
		return fmt.Errorf("-train-reconnect needs -train-worker")
	}
	if flagWasSet(fs, "checkpoint-every") && *trainCheckpoint == "" {
		return fmt.Errorf("-checkpoint-every needs -checkpoint")
	}
	if *trainCoordinator != "" {
		// The coordinator is a training mode: it takes the full set of
		// training flags but replaces the in-process samplers, so input
		// flags and -topic-workers are rejected rather than ignored.
		allowed := map[string]bool{"train-coordinator": true, "train-workers": true,
			"train-timeout": true, "checkpoint": true, "checkpoint-every": true,
			"resume": true, "elastic": true, "train-http": true, "trace": true,
			"corpus": true, "k": true, "iters": true,
			"minsup": true, "relsup": true, "alpha": true, "maxlen": true,
			"seed": true, "top": true, "nohyper": true, "filterbg": true,
			"save": true, "save-state": true, "infer": true, "infer-iters": true,
			"v": true}
		var ignored []string
		fs.Visit(func(f *flag.Flag) {
			if !allowed[f.Name] {
				ignored = append(ignored, "-"+f.Name)
			}
		})
		if len(ignored) > 0 {
			return fmt.Errorf("-train-coordinator trains over -corpus with external workers; %s would be ignored", strings.Join(ignored, ", "))
		}
		if *corpusFile == "" {
			return fmt.Errorf("-train-coordinator needs -corpus: workers rebuild their shards from the shared .tpc file")
		}
		if *trainWorkers < 1 {
			return fmt.Errorf("-train-workers must be at least 1, got %d", *trainWorkers)
		}
		if *trainResume != "" {
			// The schedule and sampler state live in the checkpoint; a
			// silently ignored -k or -iters would look like a different run.
			var clash []string
			for _, name := range []string{"k", "iters", "nohyper", "seed"} {
				if flagWasSet(fs, name) {
					clash = append(clash, "-"+name)
				}
			}
			if len(clash) > 0 {
				return fmt.Errorf("-resume takes the training schedule and sampler state from the checkpoint; %s would be ignored", strings.Join(clash, ", "))
			}
		}
		opt := topmine.DefaultOptions()
		opt.Topics = *k
		opt.Iterations = *iters
		opt.MinSupport = *minSupport
		opt.RelativeSupport = *relSupport
		opt.SigThreshold = *sig
		opt.MaxPhraseLen = *maxLen
		opt.Seed = *seed
		opt.TopPhrases = *topN
		opt.TopUnigrams = *topN
		opt.OptimizeHyper = !*noHyper
		opt.FilterBackground = *filterBG
		if err := opt.Normalize(); err != nil {
			return err
		}
		return runCoordinator(*trainCoordinator, *corpusFile, *trainWorkers, *trainTimeout,
			coordinatorConfig{
				checkpoint: *trainCheckpoint, checkpointEvery: *trainCkptEvery,
				resume: *trainResume, elastic: *trainElastic,
				statusAddr: *trainHTTP, trace: *trainTrace,
			},
			opt, *verbose, *saveModel, *saveState, *inferText, *inferIters, stdout, stderr)
	}
	if *mergePath != "" {
		var extra []string
		fs.Visit(func(f *flag.Flag) {
			if f.Name != "merge" {
				extra = append(extra, "-"+f.Name)
			}
		})
		if len(extra) > 0 {
			return fmt.Errorf("-merge reads its sources from the positional arguments; %s would be ignored", strings.Join(extra, ", "))
		}
		return runMerge(*mergePath, fs.Args(), stderr)
	}
	if *dedup && *appendPath == "" {
		return fmt.Errorf("-dedup needs -append")
	}
	if flagWasSet(fs, "dedup-threshold") && !*dedup {
		return fmt.Errorf("-dedup-threshold needs -append -dedup")
	}
	if *sketch && *appendPath == "" && *preprocess == "" {
		return fmt.Errorf("-sketch needs -preprocess or -append")
	}
	if *appendPath != "" {
		allowed := map[string]bool{"append": true, "input": true, "jsonl": true,
			"synth": true, "docs": true, "seed": true, "dedup": true,
			"dedup-threshold": true, "sketch": true}
		var ignored []string
		fs.Visit(func(f *flag.Flag) {
			if !allowed[f.Name] {
				ignored = append(ignored, "-"+f.Name)
			}
		})
		if len(ignored) > 0 {
			return fmt.Errorf("-append only grows the corpus file; %s would be ignored", strings.Join(ignored, ", "))
		}
		return runAppend(*appendPath, *input, *jsonlField, *synthDomain, *docs, *seed,
			topmine.AppendOptions{Dedup: *dedup, DedupThreshold: *dedupThreshold, Sketch: *sketch},
			stdin, stderr)
	}
	if *updatePath != "" && *loadModel == "" {
		return fmt.Errorf("-update continues training a snapshot; it needs -load")
	}
	if *loadModel != "" {
		// -load replaces training: reject explicitly-set flags it would
		// silently ignore. -iters is meaningful again — it continues
		// Gibbs training on a snapshot saved with -save-state.
		allowed := map[string]bool{"load": true, "save": true, "save-state": true,
			"infer": true, "infer-iters": true, "iters": true, "update": true}
		var ignored []string
		itersSet := false
		fs.Visit(func(f *flag.Flag) {
			if !allowed[f.Name] {
				ignored = append(ignored, "-"+f.Name)
			}
			if f.Name == "iters" {
				itersSet = true
			}
		})
		if len(ignored) > 0 {
			return fmt.Errorf("-load replaces training; %s would be ignored", strings.Join(ignored, ", "))
		}
		resumeIters := 0
		if itersSet {
			resumeIters = *iters
		}
		return runLoaded(*loadModel, *saveModel, *updatePath, *saveState, *inferText, *inferIters, resumeIters, stdout, stderr)
	}
	if (*phrasesOnly || *segmentOnly) && (*saveModel != "" || *inferText != "") {
		return fmt.Errorf("-save and -infer need a trained model; do not combine them with -phrases-only or -segment")
	}
	if *preprocess != "" && (*saveModel != "" || *inferText != "" || *phrasesOnly || *segmentOnly || *corpusFile != "") {
		return fmt.Errorf("-preprocess writes a corpus file and exits; do not combine it with -corpus, -save, -infer, -phrases-only or -segment")
	}

	opt := topmine.DefaultOptions()
	opt.Topics = *k
	opt.Iterations = *iters
	opt.MinSupport = *minSupport
	opt.RelativeSupport = *relSupport
	opt.SigThreshold = *sig
	opt.MaxPhraseLen = *maxLen
	opt.Seed = *seed
	opt.Workers = *workers
	opt.TopicWorkers = *topicWorkers
	opt.TopPhrases = *topN
	opt.TopUnigrams = *topN
	opt.OptimizeHyper = !*noHyper
	opt.FilterBackground = *filterBG
	// Normalise and validate once, exactly as the library entry points
	// do: zero selects documented defaults (-alpha 0 -> 5), negative
	// priors are rejected here instead of silently corrupting training,
	// and — critically — the direct path mines/segments under the very
	// same effective parameters that -preprocess stores and -corpus
	// matches against, keeping all three routes byte-identical.
	if err := opt.Normalize(); err != nil {
		return err
	}

	var (
		c  *topmine.Corpus
		cf *topmine.CorpusFile
	)
	switch {
	case *corpusFile != "" && (*input != "" || *synthDomain != ""):
		return fmt.Errorf("use -corpus or a raw input (-input/-synth), not both")
	case *corpusFile != "" && flagWasSet(fs, "docs"):
		// Mirror the -load path's reject-ignored-flags contract.
		return fmt.Errorf("-corpus trains on the stored corpus; -docs would be ignored")
	case *input != "" && *synthDomain != "":
		return fmt.Errorf("use either -input or -synth, not both")
	case *jsonlField != "" && *input == "":
		return fmt.Errorf("-jsonl needs -input")
	case *corpusFile != "":
		t0 := time.Now()
		var err error
		cf, err = topmine.OpenCorpusFile(*corpusFile)
		if err != nil {
			return err
		}
		defer cf.Close()
		c = cf.Corpus()
		how := "read"
		if cf.Mapped() {
			how = "mmap"
		}
		fmt.Fprintf(stderr, "corpus file %s opened (%s) in %v\n",
			*corpusFile, how, time.Since(t0).Round(time.Millisecond))
	case *input != "":
		var err error
		c, err = loadInput(*input, *jsonlField, *workers, stdin)
		if err != nil {
			return err
		}
	case *synthDomain != "":
		raw, err := topmine.GenerateExampleCorpus(*synthDomain, *docs, *seed)
		if err != nil {
			return err
		}
		copt := topmine.DefaultCorpusOptions()
		copt.Workers = *workers
		c, err = topmine.BuildCorpusFromSource(topmine.SliceSource(raw), copt)
		if err != nil {
			return err
		}
	default:
		fs.Usage()
		return errUsage
	}
	fmt.Fprintf(stderr, "corpus: %v\n", c.ComputeStats())

	if *preprocess != "" {
		t0 := time.Now()
		pre, err := topmine.PreprocessCorpus(c, opt)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "phrase mining + segmentation: %v (%d frequent phrases)\n",
			time.Since(t0).Round(time.Millisecond), pre.Mined.Counts.Len())
		save := topmine.SaveCorpusFile
		if *sketch {
			save = topmine.SaveCorpusFileSketched
		}
		if err := save(*preprocess, pre); err != nil {
			return err
		}
		fi, err := os.Stat(*preprocess)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "corpus file saved to %s (%.1f MiB); train with: topmine -corpus %s\n",
			*preprocess, float64(fi.Size())/(1<<20), *preprocess)
		return nil
	}

	var mined *topmine.MinedPhrases
	var segs []*topmine.SegmentedDoc
	if cf != nil && cf.CanReuseArtifacts(opt) {
		mined, segs = cf.Mined(), cf.Segmented()
		fmt.Fprintf(stderr, "reusing stored phrase mining (%d frequent phrases)", mined.Counts.Len())
		if segs != nil {
			fmt.Fprintf(stderr, " and segmentation")
		}
		fmt.Fprintln(stderr)
	} else if cf != nil && cf.Mined() != nil {
		fmt.Fprintln(stderr, "stored artifacts use different mining parameters; recomputing")
	} else if cf != nil && cf.StaleArtifacts() != "" {
		fmt.Fprintf(stderr, "stored artifacts dropped: %s\n", cf.StaleArtifacts())
	}
	if mined == nil {
		t0 := time.Now()
		mined = topmine.MinePhrases(c, opt)
		fmt.Fprintf(stderr, "phrase mining: %v (%d frequent phrases, support %d, longest %d)\n",
			time.Since(t0).Round(time.Millisecond), mined.Counts.Len(), mined.MinSupport, mined.MaxPhraseLen)
	}

	if *phrasesOnly {
		for _, p := range mined.Counts.Entries(2) {
			fmt.Fprintf(stdout, "%8d  %s\n", p.Count, c.DisplayWords(p.Words))
		}
		return nil
	}

	if segs == nil {
		t0 := time.Now()
		segs = topmine.SegmentCorpus(c, mined, opt)
		fmt.Fprintf(stderr, "segmentation: %v\n", time.Since(t0).Round(time.Millisecond))
	}

	if *segmentOnly {
		for _, sd := range segs {
			d := c.Docs[sd.DocID]
			for si, spans := range sd.Spans {
				seg := &d.Segments[si]
				for _, sp := range spans {
					fmt.Fprintf(stdout, "[%s] ", c.DisplayPhrase(seg, sp.Start, sp.End))
				}
			}
			fmt.Fprintln(stdout)
		}
		return nil
	}

	t0 := time.Now()
	var model *topmine.Model
	if *verbose && opt.TopicWorkers > 1 {
		model = topmine.TrainModelWithSweepStats(c, segs, opt, sweepStatsLogger(stderr))
	} else {
		model = topmine.TrainModel(c, segs, opt)
	}
	fmt.Fprintf(stderr, "topic modeling: %v (%d sweeps)\n",
		time.Since(t0).Round(time.Millisecond), opt.Iterations)

	sums := model.Visualize(c, topmine.VisualizeOptions{
		TopUnigrams: *topN, TopPhrases: *topN, FilterBackground: *filterBG,
	})
	fmt.Fprint(stdout, topmine.FormatTopics(sums))

	res := &topmine.Result{
		Corpus: c, Mined: mined, Segmented: segs,
		Model: model, Topics: sums, Options: opt,
	}
	if *saveModel != "" {
		if err := saveSnapshot(*saveModel, res, *saveState, stderr); err != nil {
			return err
		}
	}
	if *inferText != "" {
		printInference(res, *inferText, *inferIters, stdout)
	}
	return nil
}

// sweepStatsLogger returns a SweepStats hook that logs a timing
// breakdown every 25th sweep (and the first, every sweep that wrote a
// checkpoint, and every sweep after an elastic recovery), keeping -v
// readable over thousand-sweep runs while still showing the
// sample/reconcile split, checkpoint cost and elastic recoveries.
// Checkpoint and recovery sweeps log unconditionally: they used to be
// dropped when they fell between 25-sweep multiples, which hid exactly
// the events worth watching for.
func sweepStatsLogger(stderr io.Writer) func(topmine.SweepStats) {
	n := 0
	lastRecovered := 0
	return func(st topmine.SweepStats) {
		n++
		// Distributed runs report the coordinator's schedule iteration;
		// the in-process parallel path reports its own call count. Either
		// way st.Sweep is authoritative when present — the local counter n
		// drifts from it after an elastic rollback replays sweeps.
		sweep := st.Sweep
		if sweep == 0 {
			sweep = n
		}
		recovered := st.Recovered != lastRecovered
		lastRecovered = st.Recovered
		if n != 1 && n%25 != 0 && st.Checkpoint == 0 && !recovered {
			return
		}
		line := fmt.Sprintf("sweep %4d: sample %v, reconcile %v (%d workers",
			sweep, st.Sample.Round(10*time.Microsecond), st.Reconcile.Round(10*time.Microsecond), st.Workers)
		if st.Recovered > 0 {
			line += fmt.Sprintf(", %d recovered", st.Recovered)
		}
		line += ")"
		if st.Checkpoint > 0 {
			line += fmt.Sprintf(", checkpoint %v", st.Checkpoint.Round(10*time.Microsecond))
		}
		fmt.Fprintln(stderr, line)
	}
}

// coordinatorConfig carries the fault-tolerance flags into
// runCoordinator.
type coordinatorConfig struct {
	checkpoint      string
	checkpointEvery int
	resume          string
	elastic         bool
	statusAddr      string // -train-http: live status plane address
	trace           string // -trace: structured JSONL trace log path
}

// runCoordinator is the -train-coordinator mode: train over a shared
// corpus file with external worker processes, then print topics (and
// optionally snapshot/infer) exactly like an in-process run.
func runCoordinator(addr, corpusPath string, workers int, timeout time.Duration,
	cfg coordinatorConfig, opt topmine.Options, verbose bool, saveModel string, saveState bool,
	inferText string, inferIters int, stdout, stderr io.Writer) error {
	dopt := topmine.DistributedOptions{
		Addr:           addr,
		Workers:        workers,
		AcceptTimeout:  timeout,
		BarrierTimeout: timeout,
		Checkpoint:     topmine.CheckpointSpec{Path: cfg.checkpoint, Every: cfg.checkpointEvery},
		Elastic:        cfg.elastic,
		StatusAddr:     cfg.statusAddr,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		},
	}
	if cfg.trace != "" {
		f, err := os.Create(cfg.trace)
		if err != nil {
			return fmt.Errorf("open trace log: %w", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(stderr, "closing trace log: %v\n", err)
			}
		}()
		dopt.TraceLog = f
	}
	if verbose {
		dopt.SweepStats = sweepStatsLogger(stderr)
	}
	t0 := time.Now()
	var res *topmine.Result
	var err error
	if cfg.resume != "" {
		res, err = topmine.ResumeDistributed(corpusPath, cfg.resume, opt, dopt)
	} else {
		res, err = topmine.TrainDistributed(corpusPath, opt, dopt)
	}
	if err != nil {
		return err
	}
	defer res.Close()
	if cfg.resume != "" {
		fmt.Fprintf(stderr, "distributed training resumed from %s: %v (%d workers)\n",
			cfg.resume, time.Since(t0).Round(time.Millisecond), workers)
	} else {
		fmt.Fprintf(stderr, "distributed training: %v (%d workers, %d sweeps)\n",
			time.Since(t0).Round(time.Millisecond), workers, opt.Iterations)
	}
	fmt.Fprint(stdout, topmine.FormatTopics(res.Topics))
	if saveModel != "" {
		if err := saveSnapshot(saveModel, res, saveState, stderr); err != nil {
			return err
		}
	}
	if inferText != "" {
		printInference(res, inferText, inferIters, stdout)
	}
	return nil
}

// runTrainWorker is the -train-worker mode: serve one distributed
// training job and exit (re-dialing a lost coordinator when
// -train-reconnect is set).
func runTrainWorker(addr, corpusOverride string, timeout, reconnect time.Duration, stderr io.Writer) error {
	fmt.Fprintf(stderr, "connecting to coordinator at %s\n", addr)
	return topmine.ServeTrainingWorker(addr, topmine.TrainingWorkerOptions{
		CorpusPath:     corpusOverride,
		DialTimeout:    timeout,
		BarrierTimeout: timeout,
		Reconnect:      reconnect,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		},
	})
}

// runMerge is the -merge mode: k-way-merge preprocessed shards into a
// fresh corpus file.
func runMerge(dst string, srcs []string, stderr io.Writer) error {
	if len(srcs) < 2 {
		return fmt.Errorf("-merge needs at least 2 source .tpc files as positional arguments, have %d", len(srcs))
	}
	t0 := time.Now()
	stats, err := topmine.MergeCorpusFiles(dst, srcs...)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "merged %d corpus files into %s: %d documents, %d tokens in %v\n",
		stats.Sources, dst, stats.Docs, stats.Tokens, time.Since(t0).Round(time.Millisecond))
	switch {
	case stats.ArtifactsMerged:
		fmt.Fprintln(stderr, "mined phrase statistics re-aggregated exactly")
	case stats.ArtifactsDropped != "":
		fmt.Fprintf(stderr, "mined phrase statistics dropped: %s\n", stats.ArtifactsDropped)
	}
	return nil
}

// runAppend is the -append mode: grow a stored corpus in place with a
// fresh document stream, optionally suppressing near-duplicates.
func runAppend(path, input, jsonlField, synthDomain string, docs int, seed uint64,
	opt topmine.AppendOptions, stdin io.Reader, stderr io.Writer) error {
	src, cleanup, err := openSource(input, jsonlField, synthDomain, docs, seed, stdin)
	if err != nil {
		return err
	}
	defer cleanup()
	t0 := time.Now()
	stats, err := topmine.AppendCorpusFile(path, src, opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "appended %d documents (%d tokens) to %s in %v",
		stats.DocsAdded, stats.TokensAdded, path, time.Since(t0).Round(time.Millisecond))
	if stats.DocsAdded > 0 {
		fmt.Fprintf(stderr, " (%d appended segments; stored artifacts are now stale — retraining re-mines)", stats.Segments)
	}
	fmt.Fprintln(stderr)
	if opt.Dedup {
		fmt.Fprintf(stderr, "skipped %d near-duplicate documents (Jaccard >= %g)\n",
			stats.DocsSkipped, opt.DedupThreshold)
	}
	return nil
}

// openSource opens the raw document stream named by the input flags,
// for modes that consume documents without building an in-memory
// corpus first. The returned cleanup closes any underlying file.
func openSource(input, jsonlField, synthDomain string, docs int, seed uint64, stdin io.Reader) (topmine.Source, func(), error) {
	switch {
	case input != "" && synthDomain != "":
		return nil, nil, fmt.Errorf("use either -input or -synth, not both")
	case jsonlField != "" && input == "":
		return nil, nil, fmt.Errorf("-jsonl needs -input")
	case synthDomain != "":
		raw, err := topmine.GenerateExampleCorpus(synthDomain, docs, seed)
		if err != nil {
			return nil, nil, err
		}
		return topmine.SliceSource(raw), func() {}, nil
	case input == "":
		return nil, nil, fmt.Errorf("-append needs an input (-input or -synth)")
	}
	r := stdin
	cleanup := func() {}
	if input != "-" {
		f, err := os.Open(input)
		if err != nil {
			return nil, nil, err
		}
		r = f
		cleanup = func() { f.Close() }
	}
	rr, err := topmine.MaybeDecompress(r)
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	if jsonlField != "" {
		return topmine.JSONLSource(rr, jsonlField), cleanup, nil
	}
	return topmine.LineSource(rr), cleanup, nil
}

// flagWasSet reports whether the user set the named flag explicitly.
func flagWasSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// loadInput streams the corpus off disk (or the given stdin reader
// when path is "-"), tokenizing on all requested cores; raw text is
// never accumulated, so multi-GB inputs ingest in memory proportional
// to their token count. gzip input — on disk or piped — is detected by
// magic bytes and decompressed transparently.
func loadInput(path, jsonlField string, workers int, stdin io.Reader) (*topmine.Corpus, error) {
	r := stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	r, err := topmine.MaybeDecompress(r)
	if err != nil {
		return nil, err
	}
	var src topmine.Source
	if jsonlField != "" {
		src = topmine.JSONLSource(r, jsonlField)
	} else {
		src = topmine.LineSource(r)
	}
	opt := topmine.DefaultCorpusOptions()
	opt.Workers = workers
	return topmine.BuildCorpusFromSource(src, opt)
}

// saveSnapshot writes res to path, keeping the Gibbs training state
// when withState is set.
func saveSnapshot(path string, res *topmine.Result, withState bool, stderr io.Writer) error {
	save, kind := topmine.SaveSnapshotFile, "snapshot"
	if withState {
		save, kind = topmine.SaveTrainingSnapshotFile, "training snapshot (resumable with -load -iters)"
	}
	if err := save(path, res); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "%s saved to %s\n", kind, path)
	return nil
}

// runLoaded consumes a snapshot: prints its topics, optionally
// continues Gibbs training for resumeIters sweeps (snapshots saved
// with -save-state carry the training state this needs) — over the
// grown corpus at updatePath when given — re-saves when savePath is
// given, and when text is given, folds it into the model and reports
// the inferred mixture.
func runLoaded(path, savePath, updatePath string, saveState bool, text string, iters, resumeIters int, stdout, stderr io.Writer) error {
	res, err := topmine.LoadSnapshotFile(path)
	if err != nil {
		return err
	}
	defer res.Close()
	fmt.Fprintf(stderr, "snapshot %s: %d topics, %d stems, %d frequent phrases",
		path, res.Options.Topics, res.Corpus.Vocab.Size(), res.Mined.Counts.Len())
	if res.Resumable() {
		fmt.Fprintf(stderr, ", resumable")
	}
	fmt.Fprintln(stderr)
	switch {
	case updatePath != "":
		cf, err := topmine.OpenCorpusFile(updatePath)
		if err != nil {
			return err
		}
		defer cf.Close()
		oldDocs := len(res.Model.Docs)
		t0 := time.Now()
		if err := res.UpdateTraining(cf, resumeIters); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "updated training over %s: %d documents (%d new), %d sweeps in %v\n",
			updatePath, len(res.Model.Docs), len(res.Model.Docs)-oldDocs,
			resumeIters, time.Since(t0).Round(time.Millisecond))
	case resumeIters > 0:
		t0 := time.Now()
		if err := res.ResumeTraining(resumeIters); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "resumed training: %v (%d sweeps)\n",
			time.Since(t0).Round(time.Millisecond), resumeIters)
	}
	fmt.Fprint(stdout, topmine.FormatTopics(res.Topics))
	if savePath != "" {
		if err := saveSnapshot(savePath, res, saveState, stderr); err != nil {
			return err
		}
	}
	if text != "" {
		printInference(res, text, iters, stdout)
	}
	return nil
}

// printInference folds text into the trained model and reports the
// mixture.
func printInference(res *topmine.Result, text string, iters int, stdout io.Writer) {
	theta := res.InferTopics(text, iters)
	fmt.Fprintf(stdout, "\ninferred mixture for %q:\n", text)
	for k, v := range theta {
		fmt.Fprintf(stdout, "  topic %d: %.4f\n", k, v)
	}
	fmt.Fprintf(stdout, "best topic: %d\n", topmine.BestTopic(theta))
}
