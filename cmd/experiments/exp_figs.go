package main

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"topmine"
	"topmine/internal/baselines"
	"topmine/internal/corpus"
	"topmine/internal/eval"
)

// studyCache shares the expensive five-method study run across the
// fig3/fig4/fig5 experiments within one process invocation; re-running
// any single figure recomputes it from the same seeds, so results are
// identical either way.
var studyCache struct {
	sync.Once
	results map[string]map[string][]baselines.TopicPhrases
	indexes map[string]*eval.Index
}

// runStudyMethods runs all five methods on both study corpora (cached
// per process). Returns per-dataset, per-method topic lists.
func runStudyMethods(cfg config, w io.Writer) (map[string]map[string][]baselines.TopicPhrases, map[string]*eval.Index) {
	studyCache.Do(func() {
		studyCache.results, studyCache.indexes = runStudyMethodsUncached(cfg, w)
	})
	return studyCache.results, studyCache.indexes
}

func runStudyMethodsUncached(cfg config, w io.Writer) (map[string]map[string][]baselines.TopicPhrases, map[string]*eval.Index) {
	corpora := studyCorpora(cfg)
	// The paper enables hyperparameter optimisation for its user-study
	// runs (§7.4); with it, the per-document topic prior adapts to the
	// short titles instead of over-smoothing them. 300 sweeps trades a
	// little of the paper's 1000-sweep mixing for harness runtime.
	opt := baselines.Options{
		K: 5, Iterations: cfg.iters(300), Seed: cfg.seed,
		TopPhrases: 10, MinSupport: 3, OptimizeHyper: true,
	}
	results := make(map[string]map[string][]baselines.TopicPhrases)
	indexes := make(map[string]*eval.Index)
	var datasets []string
	for name := range corpora {
		datasets = append(datasets, name)
	}
	sort.Strings(datasets)
	for _, ds := range datasets {
		c := corpora[ds]
		indexes[ds] = eval.BuildIndex(c)
		results[ds] = make(map[string][]baselines.TopicPhrases)
		for _, m := range methodsForUserStudy() {
			fmt.Fprintf(w, "# running %s on %s...\n", m.Name(), ds)
			results[ds][m.Name()] = m.Run(c, opt)
		}
	}
	return results, indexes
}

var studyMethodOrder = []string{"PDLDA", "ToPMine", "KERT", "TNG", "Turbo"}

// fig3 reproduces Figure 3: the phrase-intrusion task, 20 questions,
// 3 annotators, average number answered correctly.
func fig3(cfg config, w io.Writer) error {
	results, indexes := runStudyMethods(cfg, w)
	fmt.Fprintf(w, "\nPhrase intrusion: avg # of correct answers (out of 20), 3 simulated annotators\n")
	fmt.Fprintf(w, "%-10s %8s %8s\n", "method", "ACL", "20Conf")
	for _, m := range studyMethodOrder {
		fmt.Fprintf(w, "%-10s", m)
		for _, ds := range []string{"ACL", "20Conf"} {
			r := eval.Intrusion(indexes[ds], m, results[ds][m], 20, 3, 0.05, cfg.seed+9)
			if r.Questions == 0 {
				fmt.Fprintf(w, " %8s", "n/a") // method yielded too few phrases
				continue
			}
			fmt.Fprintf(w, " %8.1f", r.Avg)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\nPaper's Fig. 3 shape: ToPMine and KERT near the top, PDLDA and TNG weakest.\n")
	return nil
}

// zRow computes per-dataset z-scores across methods with 5 noisy
// raters, mirroring the paper's expert-score standardisation.
func zRow(values map[string]float64) map[string]float64 {
	var names []string
	for n := range values {
		names = append(names, n)
	}
	sort.Strings(names)
	raw := make([]float64, len(names))
	for i, n := range names {
		raw[i] = values[n]
	}
	z := eval.ZScores(raw)
	out := make(map[string]float64, len(names))
	for i, n := range names {
		out[n] = z[i]
	}
	return out
}

// fig4 reproduces Figure 4: topical coherence z-scores.
func fig4(cfg config, w io.Writer) error {
	results, indexes := runStudyMethods(cfg, w)
	fmt.Fprintf(w, "\nTopical coherence (NPMI rater), z-scored across methods per dataset\n")
	fmt.Fprintf(w, "%-10s %8s %8s\n", "method", "ACL", "20Conf")
	scores := map[string]map[string]float64{}
	for _, ds := range []string{"ACL", "20Conf"} {
		vals := map[string]float64{}
		for _, m := range studyMethodOrder {
			vals[m] = eval.Coherence(indexes[ds], results[ds][m], 10)
		}
		scores[ds] = zRow(vals)
	}
	for _, m := range studyMethodOrder {
		fmt.Fprintf(w, "%-10s %8.2f %8.2f\n", m, scores["ACL"][m], scores["20Conf"][m])
	}
	fmt.Fprintf(w, "\nPaper's Fig. 4 shape: ToPMine highest coherence on both datasets.\n")
	return nil
}

// fig5 reproduces Figure 5: phrase-quality z-scores.
func fig5(cfg config, w io.Writer) error {
	results, indexes := runStudyMethods(cfg, w)
	fmt.Fprintf(w, "\nPhrase quality (collocation-strength rater), z-scored across methods per dataset\n")
	fmt.Fprintf(w, "%-10s %8s %8s\n", "method", "ACL", "20Conf")
	scores := map[string]map[string]float64{}
	for _, ds := range []string{"ACL", "20Conf"} {
		vals := map[string]float64{}
		for _, m := range studyMethodOrder {
			vals[m] = eval.Quality(indexes[ds], results[ds][m], 10)
		}
		scores[ds] = zRow(vals)
	}
	for _, m := range studyMethodOrder {
		fmt.Fprintf(w, "%-10s %8.2f %8.2f\n", m, scores["ACL"][m], scores["20Conf"][m])
	}
	fmt.Fprintf(w, "\nPaper's Fig. 5 shape: ToPMine top or near-top; KERT lowest (unordered itemsets).\n")
	return nil
}

// perplexityCurves runs the Figure 6/7 experiment on one domain.
func perplexityCurves(cfg config, w io.Writer, domain string, docs, k, iters, minSup int, figure string, paperShape string) error {
	raw, err := topmine.GenerateExampleCorpus(domain, cfg.sz(docs), cfg.seed)
	if err != nil {
		return err
	}
	c := topmine.BuildCorpus(raw, topmine.DefaultCorpusOptions())
	ho := topmine.SplitHeldOut(c, 0.2)
	fmt.Fprintf(w, "%s: PhraseLDA vs LDA held-out perplexity, %v, %d held-out tokens, K=%d\n\n",
		figure, c.ComputeStats(), ho.TestTokens, k)

	opt := topmine.DefaultOptions()
	opt.Topics = k
	opt.Iterations = cfg.iters(iters)
	opt.MinSupport = minSup
	opt.Seed = cfg.seed
	// §7.4: "we use hyperparameter optimization for our qualitative
	// user-study tests and perplexity calculations".
	opt.OptimizeHyper = true

	mined := topmine.MinePhrases(ho.Train, opt)
	segs := topmine.SegmentCorpus(ho.Train, mined, opt)

	every := opt.Iterations / 15
	if every == 0 {
		every = 1
	}
	type point struct{ plda, lda float64 }
	curve := map[int]*point{}
	at := func(it int) *point {
		p := curve[it]
		if p == nil {
			p = &point{}
			curve[it] = p
		}
		return p
	}
	topmine.TrainModelWithCallback(ho.Train, segs, opt, func(it int, m *topmine.Model) {
		if it%every == 0 {
			at(it).plda = topmine.Perplexity(m, ho)
		}
	})
	topmine.TrainLDAWithCallback(ho.Train, opt, func(it int, m *topmine.Model) {
		if it%every == 0 {
			at(it).lda = topmine.Perplexity(m, ho)
		}
	})
	fmt.Fprintf(w, "%6s %12s %12s %10s\n", "iter", "PhraseLDA", "LDA", "gap")
	var its []int
	for it := range curve {
		its = append(its, it)
	}
	sort.Ints(its)
	var last *point
	for _, it := range its {
		p := curve[it]
		fmt.Fprintf(w, "%6d %12.1f %12.1f %+9.1f\n", it, p.plda, p.lda, p.plda-p.lda)
		last = p
	}
	if last != nil {
		fmt.Fprintf(w, "\nfinal gap (PhraseLDA - LDA): %+.1f\n", last.plda-last.lda)
	}
	fmt.Fprintf(w, "%s\n", paperShape)
	return nil
}

// fig6 reproduces Figure 6 (Yelp perplexity).
func fig6(cfg config, w io.Writer) error {
	return perplexityCurves(cfg, w, "yelp-reviews", 2500, 10, 450, 6, "Figure 6",
		"Paper's Fig. 6 shape: on reviews PhraseLDA converges to distinctly LOWER\n"+
			"perplexity than LDA (paper: ~45 bits lower on Yelp, ~3%).\n"+
			"Known deviation of this reproduction (see EXPERIMENTS.md): on the small-\n"+
			"vocabulary synthetic corpus LDA already captures the planted collocations\n"+
			"from unigram co-occurrence, so the clique constraint adds rigidity without\n"+
			"information and PhraseLDA lands slightly ABOVE LDA; both curves must still\n"+
			"fall together and stay within ~10%.")
}

// fig7 reproduces Figure 7 (DBLP abstracts perplexity).
func fig7(cfg config, w io.Writer) error {
	return perplexityCurves(cfg, w, "dblp-abstracts", 1200, 10, 450, 8, "Figure 7",
		"Paper's Fig. 7 shape: on abstracts PhraseLDA is COMPARABLE to LDA\n"+
			"(curves close). Same small-vocabulary caveat as Figure 6 applies to the\n"+
			"sign of the residual gap.")
}

// buildAbstracts builds a scaled DBLP-abstracts corpus for fig8/table3.
func buildAbstracts(cfg config, docs int, seed uint64) *corpus.Corpus {
	raw, _ := topmine.GenerateExampleCorpus("dblp-abstracts", docs, seed)
	return topmine.BuildCorpus(raw, topmine.DefaultCorpusOptions())
}
