package main

import (
	"fmt"
	"io"

	"topmine"
	"topmine/internal/baselines"
	"topmine/internal/corpus"
	"topmine/internal/eval"
	"topmine/internal/synth"
	"topmine/internal/topicmodel"
)

// recovery is an experiment beyond the paper, made possible by the
// synthetic substitution: because the corpora carry ground truth —
// planted collocations and per-document dominant topics — we can score
// each method's phrase lists by recovery precision/recall and the
// learned document-topic structure by purity and NMI. The paper's
// human studies are indirect proxies for exactly these quantities.
func recovery(cfg config, w io.Writer) error {
	spec := synth.TwentyConf()
	docs, labels := synth.GenerateLabeled(spec, synth.Options{Docs: cfg.sz(6000), Seed: cfg.seed + 2})
	c := corpus.FromStrings(docs, corpus.DefaultBuildOptions())

	opt := baselines.Options{
		K: spec.NumTopics(), Iterations: cfg.iters(150), Seed: cfg.seed,
		TopPhrases: 14, MinSupport: 3, OptimizeHyper: true,
	}
	fmt.Fprintf(w, "Ground-truth evaluation on labeled synthetic 20Conf (%d docs, %d planted topics)\n\n",
		c.NumDocs(), spec.NumTopics())
	fmt.Fprintf(w, "%-10s %9s %9s %7s\n", "method", "precision", "recall", "extra")
	for _, m := range methodsForUserStudy() {
		out := m.Run(c, opt)
		rec := eval.PhraseRecovery(c, spec.PlantedPhrases(), out)
		fmt.Fprintf(w, "%-10s %9.2f %9.2f %7d\n", m.Name(), rec.Precision, rec.Recall, rec.Extra)
	}

	// Document-topic purity of the PhraseLDA model versus planted
	// labels, against an LDA control.
	popt := topmine.DefaultOptions()
	popt.Topics = spec.NumTopics()
	popt.Iterations = cfg.iters(150)
	popt.MinSupport = 3
	popt.SigThreshold = 3
	popt.Seed = cfg.seed
	res, err := topmine.RunCorpus(c, popt)
	if err != nil {
		return err
	}
	assign := func(m *topmine.Model) []int {
		out := make([]int, len(m.Nd))
		theta := make([]float64, m.K)
		for d := range out {
			m.Theta(d, theta)
			out[d] = topicmodel.BestTopic(theta)
		}
		return out
	}
	lda := topmine.TrainLDA(c, popt)
	fmt.Fprintf(w, "\n%-10s %8s %8s\n", "model", "purity", "NMI")
	fmt.Fprintf(w, "%-10s %8.2f %8.2f\n", "PhraseLDA",
		eval.Purity(assign(res.Model), labels, popt.Topics), eval.NMI(assign(res.Model), labels))
	fmt.Fprintf(w, "%-10s %8.2f %8.2f\n", "LDA",
		eval.Purity(assign(lda), labels, popt.Topics), eval.NMI(assign(lda), labels))
	fmt.Fprintf(w, "\nExpected: ToPMine precision/recall at or near the top; PhraseLDA purity >= LDA\n"+
		"(phrase constraints propagate topical evidence across phrase tokens).\n")
	return nil
}
