package main

import (
	"bytes"
	"strings"
	"testing"
)

// Smoke tests: every experiment must run end to end at miniature scale
// and produce plausible output. These keep the regeneration harness
// from rotting as the library evolves; the real runs use
// `go run ./cmd/experiments all`.

func tinyConfig() config {
	return config{scale: 0.05, seed: 7, out: "", fast: true}
}

func runExperiment(t *testing.T, f func(config, *bytes.Buffer) error) string {
	t.Helper()
	var buf bytes.Buffer
	if err := f(tinyConfig(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.TrimSpace(out) == "" {
		t.Fatal("experiment produced no output")
	}
	return out
}

func TestTable1Smoke(t *testing.T) {
	out := runExperiment(t, func(c config, b *bytes.Buffer) error { return table1(c, b) })
	if !strings.Contains(out, "Terms") || !strings.Contains(out, "Phrases") {
		t.Fatalf("table1 output malformed:\n%s", out)
	}
}

func TestFig8Smoke(t *testing.T) {
	out := runExperiment(t, func(c config, b *bytes.Buffer) error { return fig8(c, b) })
	if !strings.Contains(out, "PhraseMining") || !strings.Contains(out, "ratio") {
		t.Fatalf("fig8 output malformed:\n%s", out)
	}
}

func TestFig6Smoke(t *testing.T) {
	out := runExperiment(t, func(c config, b *bytes.Buffer) error { return fig6(c, b) })
	if !strings.Contains(out, "PhraseLDA") || !strings.Contains(out, "final gap") {
		t.Fatalf("fig6 output malformed:\n%s", out)
	}
}

func TestTable6Smoke(t *testing.T) {
	out := runExperiment(t, func(c config, b *bytes.Buffer) error { return table6(c, b) })
	if !strings.Contains(out, "n-grams:") {
		t.Fatalf("table6 output malformed:\n%s", out)
	}
}

func TestConfigScaling(t *testing.T) {
	c := config{scale: 2}
	if c.sz(100) != 200 {
		t.Fatalf("sz scaling wrong: %d", c.sz(100))
	}
	c.scale = 0.001
	if c.sz(100) != 10 {
		t.Fatalf("sz floor wrong: %d", c.sz(100))
	}
	f := config{fast: true}
	if f.iters(100) != 20 {
		t.Fatalf("fast iters wrong: %d", f.iters(100))
	}
	if f.iters(10) != 5 {
		t.Fatalf("fast iters floor wrong: %d", f.iters(10))
	}
	n := config{}
	if n.iters(100) != 100 {
		t.Fatal("non-fast iters changed")
	}
}
