package main

import (
	"fmt"
	"io"
	"time"

	"topmine"
	"topmine/internal/baselines"
	"topmine/internal/corpus"
	"topmine/internal/synth"
)

// fig8 reproduces Figure 8: decomposition of ToPMine's runtime into
// phrase mining and PhraseLDA across corpus sizes. The paper plots
// abstracts from 5K to 40K documents on a log scale with 10 topics and
// 2000 Gibbs iterations, finding both components linear and topic
// modeling consistently ~40x the mining time.
func fig8(cfg config, w io.Writer) error {
	iters := cfg.iters(150)
	fmt.Fprintf(w, "Figure 8: runtime decomposition on DBLP-abstract corpora, K=10, %d Gibbs iterations\n\n", iters)
	fmt.Fprintf(w, "%8s %10s %14s %14s %8s\n", "docs", "tokens", "PhraseMining", "PhraseLDA", "ratio")

	sizes := []int{625, 1250, 2500, 5000}
	type row struct {
		docs, tokens   int
		mining, topics time.Duration
	}
	var rows []row
	for _, n := range sizes {
		docs := cfg.sz(n)
		c := buildAbstracts(cfg, docs, cfg.seed)
		opt := topmine.DefaultOptions()
		opt.Topics = 10
		opt.Iterations = iters
		opt.MinSupport = 5
		opt.Seed = cfg.seed
		opt.OptimizeHyper = false
		opt.Workers = 1

		t0 := time.Now()
		mined := topmine.MinePhrases(c, opt)
		segs := topmine.SegmentCorpus(c, mined, opt)
		tMine := time.Since(t0)

		t0 = time.Now()
		topmine.TrainModel(c, segs, opt)
		tTopic := time.Since(t0)
		rows = append(rows, row{docs, c.TotalTokens, tMine, tTopic})
		fmt.Fprintf(w, "%8d %10d %14s %14s %7.1fx\n", docs, c.TotalTokens,
			tMine.Round(time.Millisecond), tTopic.Round(time.Millisecond),
			float64(tTopic)/float64(tMine))
	}
	// Linearity check: time per token at the largest vs smallest size.
	first, last := rows[0], rows[len(rows)-1]
	mineRatio := (float64(last.mining) / float64(last.tokens)) /
		(float64(first.mining) / float64(first.tokens))
	topicRatio := (float64(last.topics) / float64(last.tokens)) /
		(float64(first.topics) / float64(first.tokens))
	fmt.Fprintf(w, "\nper-token cost growth %dx corpus: mining %.2fx, topic modeling %.2fx (1.0 = perfectly linear)\n",
		last.tokens/first.tokens, mineRatio, topicRatio)
	fmt.Fprintf(w, "Paper's Fig. 8 shape: both components linear in corpus size; PhraseLDA\n"+
		"dominates total runtime (paper: ~40x at 2000 iterations; ratio scales with\n"+
		"iteration count — at %d iterations expect roughly %d/2000 of that).\n",
		iters, iters)
	return nil
}

// table3Dataset describes one column of Table 3.
type table3Dataset struct {
	name  string
	build func() *corpus.Corpus
	k     int
}

// table3 reproduces Table 3: runtime of all six methods on four
// dataset scales. PD-LDA and Turbo Topics are run at reduced iteration
// counts and extrapolated (marked ~), exactly as the paper did for its
// intractable cells.
func table3(cfg config, w io.Writer) error {
	iters := cfg.iters(100)
	build := corpus.DefaultBuildOptions()
	datasets := []table3Dataset{
		{"titles-s (k=5)", func() *corpus.Corpus {
			return synth.GenerateCorpus(synth.DBLPTitles(), synth.Options{Docs: cfg.sz(1500), Seed: cfg.seed}, build)
		}, 5},
		{"titles (k=30)", func() *corpus.Corpus {
			return synth.GenerateCorpus(synth.DBLPTitles(), synth.Options{Docs: cfg.sz(6000), Seed: cfg.seed}, build)
		}, 30},
		{"abstracts-s (k=5)", func() *corpus.Corpus {
			return synth.GenerateCorpus(synth.DBLPAbstracts(), synth.Options{Docs: cfg.sz(400), Seed: cfg.seed}, build)
		}, 5},
		{"abstracts (k=10)", func() *corpus.Corpus {
			return synth.GenerateCorpus(synth.DBLPAbstracts(), synth.Options{Docs: cfg.sz(1600), Seed: cfg.seed}, build)
		}, 10},
	}
	// The two expensive methods run 10x fewer sweeps, extrapolated.
	const slowFactor = 10
	methods := []struct {
		m           baselines.Method
		extrapolate bool
	}{
		{baselines.PDLDA{}, true},
		{baselines.TurboTopics{Permutations: 3, MaxRounds: 3}, true},
		{baselines.TNG{}, false},
		{baselines.LDAUnigrams{}, false},
		{baselines.KERT{}, false},
		{baselines.ToPMine{}, false},
	}

	fmt.Fprintf(w, "Table 3: runtime (seconds), %d Gibbs iterations per method ("+
		"~ = measured at %d iterations and extrapolated, as the paper did)\n\n", iters, iters/slowFactor)
	fmt.Fprintf(w, "%-10s", "method")
	for _, ds := range datasets {
		fmt.Fprintf(w, " %18s", ds.name)
	}
	fmt.Fprintln(w)
	for _, spec := range methods {
		fmt.Fprintf(w, "%-10s", spec.m.Name())
		for _, ds := range datasets {
			c := ds.build()
			opt := baselines.Options{
				K: ds.k, Iterations: iters, Seed: cfg.seed,
				TopPhrases: 10, MinSupport: 5,
			}
			mark := ""
			factor := 1.0
			if spec.extrapolate {
				opt.Iterations = iters / slowFactor
				if opt.Iterations < 1 {
					opt.Iterations = 1
				}
				factor = float64(iters) / float64(opt.Iterations)
				mark = "~"
			}
			t0 := time.Now()
			spec.m.Run(c, opt)
			secs := time.Since(t0).Seconds() * factor
			fmt.Fprintf(w, " %17s", fmt.Sprintf("%s%.1fs", mark, secs))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\nPaper's Table 3 shape: PDLDA and Turbo orders of magnitude slower than the\n"+
		"rest; TNG and KERT above LDA; ToPMine within the same order as LDA (often\n"+
		"faster per sweep, since PhraseLDA samples once per multi-word phrase).\n")
	return nil
}
