package main

import (
	"fmt"
	"io"

	"topmine/internal/baselines"
	"topmine/internal/corpus"
	"topmine/internal/counter"
	"topmine/internal/eval"
	"topmine/internal/phrasemine"
	"topmine/internal/segment"
	"topmine/internal/synth"
)

// ablation quantifies the design choices DESIGN.md calls out, using
// planted-phrase ground truth:
//
//   - significance score: the paper's t-statistic (Eq. 1) versus PMI
//     and signed χ² — the paper argues the t-statistic resists the
//     rare-pair pathology of PMI and the free-rider problem;
//   - merge threshold α sweep — precision/recall trade-off (§4.2);
//   - minimum support ε sweep — "the larger minimum support is, the
//     more precision and the less recall is expected" (§4.1).
func ablation(cfg config, w io.Writer) error {
	spec := synth.TwentyConf()
	c := synth.GenerateCorpus(spec, synth.Options{Docs: cfg.sz(6000), Seed: cfg.seed + 5},
		corpus.DefaultBuildOptions())

	plantedKeys := make(map[string]bool)
	for _, p := range spec.PlantedPhrases() {
		if ids, ok := eval.ResolvePhrase(c, p); ok && len(ids) >= 2 {
			plantedKeys[counter.Key(ids)] = true
		}
	}
	fmt.Fprintf(w, "Segmentation ablations on synthetic 20Conf (%d docs, %d resolvable planted phrases)\n",
		c.NumDocs(), len(plantedKeys))

	// score = fraction of multi-word phrase *types* extracted that are
	// planted (precision) and fraction of planted types extracted
	// (recall), from the corpus-wide segmentation.
	evaluate := func(mined *phrasemine.Result, opt segment.Options) (prec, rec float64, types int) {
		segs := segment.NewSegmenter(mined, opt).SegmentCorpus(c)
		inst := segment.PhraseInstances(c, segs)
		found := make(map[string]bool)
		total := 0
		inst.Each(func(key string, n int64) {
			if counter.KeyLen(key) < 2 {
				return
			}
			total++
			if plantedKeys[key] {
				found[key] = true
			}
		})
		if total > 0 {
			prec = float64(len(found)) / float64(total)
		}
		if len(plantedKeys) > 0 {
			rec = float64(len(found)) / float64(len(plantedKeys))
		}
		return prec, rec, total
	}

	mined := phrasemine.Mine(c, phrasemine.Options{MinSupport: 5, MaxLen: 8, Workers: 1})

	// The three scores live on different scales (standard deviations,
	// log-lift, chi-square mass), so each is swept over its own
	// threshold grid and reported at its best F1 — the comparison the
	// paper's argument implies (which measure *can* be thresholded to
	// isolate true collocations).
	fmt.Fprintf(w, "\n(a) significance score, each at its best-F1 threshold (eps=5)\n"+
		"%-10s %8s %10s %8s %8s %8s\n", "score", "alpha*", "precision", "recall", "F1", "types")
	grids := map[string][]float64{
		"tstat": {1, 2, 3, 5, 8, 12},
		"pmi":   {0.5, 1, 2, 3, 4, 6},
		"chi2":  {5, 20, 80, 300, 1000, 4000},
	}
	for _, sc := range []struct {
		name string
		f    segment.ScoreFunc
	}{{"tstat", segment.TStat}, {"pmi", segment.PMI}, {"chi2", segment.ChiSquare}} {
		bestF1, bestA, bestP, bestR, bestN := -1.0, 0.0, 0.0, 0.0, 0
		for _, a := range grids[sc.name] {
			p, r, n := evaluate(mined, segment.Options{Alpha: a, MaxPhraseLen: 8, Workers: 1, Score: sc.f})
			if p+r == 0 {
				continue
			}
			f1 := 2 * p * r / (p + r)
			if f1 > bestF1 {
				bestF1, bestA, bestP, bestR, bestN = f1, a, p, r, n
			}
		}
		fmt.Fprintf(w, "%-10s %8.1f %10.2f %8.2f %8.2f %8d\n",
			sc.name, bestA, bestP, bestR, bestF1, bestN)
	}

	fmt.Fprintf(w, "\n(b) merge threshold alpha (t-stat, eps=5)\n%-10s %10s %8s %8s\n",
		"alpha", "precision", "recall", "types")
	for _, a := range []float64{1, 2, 3, 5, 8} {
		p, r, n := evaluate(mined, segment.Options{Alpha: a, MaxPhraseLen: 8, Workers: 1})
		fmt.Fprintf(w, "%-10.0f %10.2f %8.2f %8d\n", a, p, r, n)
	}

	fmt.Fprintf(w, "\n(c) minimum support eps (t-stat, alpha=3)\n%-10s %10s %8s %8s\n",
		"eps", "precision", "recall", "types")
	for _, e := range []int{2, 5, 10, 20} {
		m := phrasemine.Mine(c, phrasemine.Options{MinSupport: e, MaxLen: 8, Workers: 1})
		p, r, n := evaluate(m, segment.Options{Alpha: 3, MaxPhraseLen: 8, Workers: 1})
		fmt.Fprintf(w, "%-10d %10.2f %8.2f %8d\n", e, p, r, n)
	}

	// (d) background filtering effect on abstracts (where background
	// phrases are planted): how many background phrases survive into
	// top lists with and without the §8 filter.
	aspec := synth.DBLPAbstracts()
	ac := synth.GenerateCorpus(aspec, synth.Options{Docs: cfg.sz(800), Seed: cfg.seed + 6},
		corpus.DefaultBuildOptions())
	bgKeys := make(map[string]bool)
	for _, p := range aspec.BackgroundPhrases {
		if ids, ok := eval.ResolvePhrase(ac, p); ok && len(ids) >= 2 {
			bgKeys[counter.Key(ids)] = true
		}
	}
	countBG := func(filter bool) int {
		tm := baselines.ToPMine{SigAlpha: 3, FilterBackground: filter, BackgroundMaxDocFrac: 0.25}
		out := tm.Run(ac, baselines.Options{
			K: aspec.NumTopics(), Iterations: cfg.iters(120), Seed: cfg.seed,
			TopPhrases: 10, MinSupport: 5, OptimizeHyper: true,
		})
		n := 0
		for _, tp := range out {
			for _, p := range tp.Phrases {
				if bgKeys[counter.Key(p.Words)] {
					n++
				}
			}
		}
		return n
	}
	fmt.Fprintf(w, "\n(d) background-phrase filter (abstracts, %d planted background phrases)\n", len(bgKeys))
	fmt.Fprintf(w, "background phrase appearances in top-10 lists: unfiltered=%d filtered=%d\n",
		countBG(false), countBG(true))

	fmt.Fprintf(w, "\nExpected shapes: t-stat precision >= pmi (PMI over-merges rare pairs);\n"+
		"raising alpha or eps trades recall for precision; the filter removes\n"+
		"most background appearances.\n")
	return nil
}
