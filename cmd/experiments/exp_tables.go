package main

import (
	"fmt"
	"io"
	"strings"

	"topmine"
	"topmine/internal/baselines"
	"topmine/internal/corpus"
	"topmine/internal/synth"
)

// visualize runs the full ToPMine pipeline on a synthetic domain and
// prints topics in the two-row (1-grams / n-grams) layout of the
// paper's Tables 1 and 4-6.
func visualize(cfg config, w io.Writer, domain string, docs, k, iters, minSup int, note string) error {
	raw, err := topmine.GenerateExampleCorpus(domain, cfg.sz(docs), cfg.seed)
	if err != nil {
		return err
	}
	opt := topmine.DefaultOptions()
	opt.Topics = k
	opt.Iterations = cfg.iters(iters)
	opt.MinSupport = minSup
	opt.Seed = cfg.seed
	res, err := topmine.Run(raw, opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s\ncorpus: %v\n\n", note, res.Corpus.ComputeStats())
	printTopicColumns(w, res.Topics)
	return nil
}

// printTopicColumns renders topics side by side, five per block.
func printTopicColumns(w io.Writer, topics []topmine.TopicSummary) {
	const perBlock = 5
	for lo := 0; lo < len(topics); lo += perBlock {
		hi := lo + perBlock
		if hi > len(topics) {
			hi = len(topics)
		}
		block := topics[lo:hi]
		for _, t := range block {
			fmt.Fprintf(w, "%-26s", fmt.Sprintf("Topic %d", t.Topic))
		}
		fmt.Fprintln(w)
		fmt.Fprintln(w, strings.Repeat("-", 26*len(block)))
		fmt.Fprintln(w, "1-grams:")
		for row := 0; row < 10; row++ {
			for _, t := range block {
				cell := ""
				if row < len(t.Unigrams) {
					cell = t.Unigrams[row]
				}
				fmt.Fprintf(w, "%-26s", trunc(cell, 24))
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w, "n-grams:")
		for row := 0; row < 10; row++ {
			for _, t := range block {
				cell := ""
				if row < len(t.Phrases) {
					cell = t.Phrases[row].Display
				}
				fmt.Fprintf(w, "%-26s", trunc(cell, 24))
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// table1 reproduces Table 1: the Information Retrieval topic from
// ToPMine on 20Conf-style titles, terms beside phrases.
func table1(cfg config, w io.Writer) error {
	raw, err := topmine.GenerateExampleCorpus("20conf", cfg.sz(4000), cfg.seed)
	if err != nil {
		return err
	}
	opt := topmine.DefaultOptions()
	opt.Topics = 5
	opt.Iterations = cfg.iters(400)
	opt.Seed = cfg.seed
	opt.TopPhrases = 11
	opt.TopUnigrams = 11
	res, err := topmine.Run(raw, opt)
	if err != nil {
		return err
	}
	// Find the IR topic: the one whose phrases mention retrieval/search.
	best, bestScore := 0, -1
	for i, t := range res.Topics {
		score := 0
		joined := strings.Join(t.Unigrams, " ")
		for _, kw := range []string{"search", "retrieval", "web", "query", "information"} {
			if strings.Contains(joined, kw) {
				score++
			}
		}
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	t := res.Topics[best]
	fmt.Fprintf(w, "Information Retrieval topic (topic %d of %d), ToPMine on %d synthetic 20Conf titles\n",
		t.Topic, opt.Topics, res.Corpus.NumDocs())
	fmt.Fprintf(w, "%-20s %s\n%s\n", "Terms", "Phrases", strings.Repeat("-", 50))
	for i := 0; i < 11; i++ {
		term, phrase := "", ""
		if i < len(t.Unigrams) {
			term = t.Unigrams[i]
		}
		if i < len(t.Phrases) {
			phrase = t.Phrases[i].Display
		}
		fmt.Fprintf(w, "%-20s %s\n", term, phrase)
	}
	fmt.Fprintf(w, "\nPaper's Table 1 shape: terms are topical unigrams (search, web,\n"+
		"retrieval...), phrases are recognisable IR collocations\n"+
		"(information retrieval, web search, search engine...).\n")
	return nil
}

// table4 reproduces Table 4 (DBLP abstracts topics).
func table4(cfg config, w io.Writer) error {
	return visualize(cfg, w, "dblp-abstracts", 1500, 11, 400, 8,
		"Table 4: ToPMine topics on synthetic DBLP abstracts (paper: 50-topic run on 529K abstracts;\n"+
			"here: 11 planted CS areas at reduced scale). Expect coherent areas (ML, DM, IR, NLP, PL,\n"+
			"optimization, DB, vision, security, networking, theory) with signature phrases.")
}

// table5 reproduces Table 5 (AP News topics).
func table5(cfg config, w io.Writer) error {
	return visualize(cfg, w, "ap-news", 800, 9, 400, 8,
		"Table 5: ToPMine topics on synthetic AP News (paper: 50-topic run on 106K articles;\n"+
			"here: the 9 planted news areas — environment/energy, religion, Israel/Palestine,\n"+
			"Bush administration, health care, markets, courts, disasters, sports).")
}

// table6 reproduces Table 6 (Yelp reviews topics).
func table6(cfg config, w io.Writer) error {
	return visualize(cfg, w, "yelp-reviews", 2000, 8, 400, 6,
		"Table 6: ToPMine topics on synthetic Yelp reviews (paper: 10-topic run on 230K reviews;\n"+
			"here: the 8 planted areas — breakfast/coffee, Asian food, hotels, shopping, Mexican\n"+
			"food, nightlife, auto, salons). The paper notes noisier phrases on Yelp due to sentiment background words\n"+
			"('good', 'love', 'great'); the generator plants that same background.")
}

// methodsForUserStudy returns the five methods of Figures 3-5 with
// study-scale parameters. ToPMine's significance threshold is lowered
// from the paper's 5 to 3 because the study corpora here are ~15x
// smaller than the paper's and the t-statistic grows with sqrt(corpus
// size); 3 preserves the same selectivity at this scale.
func methodsForUserStudy() []baselines.Method {
	return []baselines.Method{
		baselines.PDLDA{},
		baselines.ToPMine{SigAlpha: 3},
		baselines.KERT{},
		baselines.TNG{},
		baselines.TurboTopics{Permutations: 3, MaxRounds: 3},
	}
}

// studyCorpora builds the two user-study datasets (ACL, 20Conf).
func studyCorpora(cfg config) map[string]*corpus.Corpus {
	build := corpus.DefaultBuildOptions()
	return map[string]*corpus.Corpus{
		"ACL": synth.GenerateCorpus(synth.ACLAbstracts(),
			synth.Options{Docs: cfg.sz(800), Seed: cfg.seed + 1}, build),
		"20Conf": synth.GenerateCorpus(synth.TwentyConf(),
			synth.Options{Docs: cfg.sz(6000), Seed: cfg.seed + 2}, build),
	}
}
