// Command experiments regenerates every table and figure of the
// paper's evaluation (§7) on synthetic stand-in corpora (DESIGN.md §5).
// Each experiment prints the same rows/series the paper reports and
// writes a copy under -out.
//
//	experiments table1|fig3|fig4|fig5|fig6|fig7|fig8|table3|table4|table5|table6|all
//	experiments -scale 2 all     # double every corpus size
//
// Absolute numbers differ from the paper (different hardware, corpus
// scale, and synthetic data); the *shapes* — method ordering, runtime
// ratios, perplexity gaps, crossovers — are the reproduction target.
// EXPERIMENTS.md records paper-vs-measured for every experiment.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
)

type config struct {
	scale float64
	seed  uint64
	out   string
	fast  bool
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	cfg := config{}
	flag.Float64Var(&cfg.scale, "scale", 1.0, "corpus size multiplier")
	flag.Uint64Var(&cfg.seed, "seed", 42, "random seed")
	flag.StringVar(&cfg.out, "out", "results", "output directory")
	flag.BoolVar(&cfg.fast, "fast", false, "reduced iterations for smoke runs")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: experiments [flags] <experiment>|all")
		fmt.Fprintln(os.Stderr, "experiments: table1 fig3 fig4 fig5 fig6 fig7 fig8 table3 table4 table5 table6 recovery")
		os.Exit(2)
	}
	if err := os.MkdirAll(cfg.out, 0o755); err != nil {
		log.Fatal(err)
	}

	experiments := map[string]func(config, io.Writer) error{
		"table1":   table1,
		"fig3":     fig3,
		"fig4":     fig4,
		"fig5":     fig5,
		"fig6":     fig6,
		"fig7":     fig7,
		"fig8":     fig8,
		"table3":   table3,
		"table4":   table4,
		"table5":   table5,
		"table6":   table6,
		"recovery": recovery, // extra: ground-truth scoring (see exp_recovery.go)
		"ablation": ablation, // extra: design-choice ablations (see exp_ablation.go)
	}
	order := []string{"table1", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "table3", "table4", "table5", "table6", "recovery", "ablation"}

	var names []string
	for _, arg := range flag.Args() {
		if arg == "all" {
			names = order
			break
		}
		if _, ok := experiments[arg]; !ok {
			log.Fatalf("unknown experiment %q", arg)
		}
		names = append(names, arg)
	}
	for _, name := range names {
		path := filepath.Join(cfg.out, name+".txt")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		w := io.MultiWriter(os.Stdout, f)
		fmt.Fprintf(w, "==== %s ====\n", strings.ToUpper(name))
		if err := experiments[name](cfg, w); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Fprintln(w)
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
}

// sz scales a corpus size.
func (c config) sz(n int) int {
	v := int(float64(n) * c.scale)
	if v < 10 {
		v = 10
	}
	return v
}

// iters scales iteration counts down in -fast mode.
func (c config) iters(n int) int {
	if c.fast {
		n /= 5
		if n < 5 {
			n = 5
		}
	}
	return n
}
