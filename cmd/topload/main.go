// Command topload replays access-log-shaped workloads against a
// topmined serving fleet and reports the numbers capacity planning
// needs: latency percentiles, achieved QPS, error rate, and the
// cache-hit and coalescing ratios scraped from /metrics. It is the
// measurement half of the serving stack — "millions of users" starts
// with knowing what one instance does under realistic traffic.
//
// Workload shape: texts are drawn from a pool (a file of real texts, or
// a built-in synthetic domain) under a Zipf distribution — like real
// traffic, a few texts are hot and most are cold — and each request is
// a single /v1/infer, a batched /v1/infer, or a /v1/segment according
// to the configured mix.
//
// Pacing: closed-loop by default (-conc workers issue requests
// back-to-back, measuring the server at saturation), or open-loop with
// -qps (requests dispatched on a fixed schedule regardless of
// completions, the shape real independent users produce; latency is
// measured from the scheduled send time, so queueing delay under
// overload is charged to the server, not hidden — the standard fix for
// coordinated omission).
//
// Targets: a running daemon (-target http://host:8080), or -snapshot
// model.tpm to run a hermetic in-process server on a loopback port —
// same handler stack, no external process, reproducible in CI.
//
//	topmine -synth 20conf -docs 400 -k 4 -iters 60 -save demo.tpm
//	topload -snapshot demo.tpm -synth 20conf -docs 200 -duration 10s -conc 8
//	topload -target http://localhost:8080 -texts access_texts.txt -qps 500 -duration 30s
//
// The human report goes to stderr. stdout carries the same results as
// `go test -bench`-format lines, so the existing trajectory tooling
// archives them:
//
//	topload ... | go run ./cmd/benchjson -out BENCH_serve.json
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"topmine"
	"topmine/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("topload: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// ops, indexed by the op byte carried in each sample.
const (
	opInfer = iota
	opBatch
	opSegment
	numOps
)

var opNames = [numOps]string{"infer", "batch", "segment"}

// sample is one completed request.
type sample struct {
	op  uint8
	ok  bool
	lat time.Duration
}

// config is the parsed flag set run operates on.
type config struct {
	target   string
	snapshot string
	texts    string
	synth    string
	docs     int
	model    string
	iters    int

	duration time.Duration
	warmup   time.Duration
	conc     int
	qps      float64
	zipf     float64

	segmentFrac float64
	batchFrac   float64
	batchSize   int
	seed        uint64
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("topload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg config
	fs.StringVar(&cfg.target, "target", "", "base URL of a running topmined (e.g. http://localhost:8080)")
	fs.StringVar(&cfg.snapshot, "snapshot", "", "serve this pipeline snapshot in-process on a loopback port instead of targeting a daemon (hermetic benchmark)")
	fs.StringVar(&cfg.texts, "texts", "", "text pool file, one text per line; earlier lines are hotter under the Zipf draw")
	fs.StringVar(&cfg.synth, "synth", "", "generate the text pool from a synthetic domain instead: "+strings.Join(topmine.ExampleDomains(), ", "))
	fs.IntVar(&cfg.docs, "docs", 500, "texts to generate with -synth")
	fs.StringVar(&cfg.model, "model", "", "model name to request (empty = server default)")
	fs.IntVar(&cfg.iters, "iters", 20, "sampling sweeps per inference request")
	fs.DurationVar(&cfg.duration, "duration", 10*time.Second, "measured load duration")
	fs.DurationVar(&cfg.warmup, "warmup", 0, "run this long before measuring (cache and connection warmup)")
	fs.IntVar(&cfg.conc, "conc", runtime.GOMAXPROCS(0), "closed loop: concurrent workers; open loop: max in-flight requests")
	fs.Float64Var(&cfg.qps, "qps", 0, "open-loop target requests/second (0 = closed loop at -conc)")
	fs.Float64Var(&cfg.zipf, "zipf", 1.1, "Zipf s parameter for text popularity (must be > 1; <= 1 selects uniformly)")
	fs.Float64Var(&cfg.segmentFrac, "segment", 0.1, "fraction of requests hitting /v1/segment")
	fs.Float64Var(&cfg.batchFrac, "batch", 0.0, "fraction of requests that are batched /v1/infer calls")
	fs.IntVar(&cfg.batchSize, "batch-size", 16, "documents per batched infer request")
	fs.Uint64Var(&cfg.seed, "seed", 1, "workload RNG seed (same seed + pool = same request sequence)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if (cfg.target == "") == (cfg.snapshot == "") {
		return fmt.Errorf("exactly one of -target or -snapshot is required")
	}
	if cfg.segmentFrac < 0 || cfg.batchFrac < 0 || cfg.segmentFrac+cfg.batchFrac > 1 {
		return fmt.Errorf("-segment and -batch must be non-negative and sum to at most 1")
	}
	if cfg.conc < 1 || cfg.batchSize < 1 || cfg.duration <= 0 {
		return fmt.Errorf("-conc, -batch-size and -duration must be positive")
	}

	pool, err := loadPool(cfg)
	if err != nil {
		return err
	}

	base := cfg.target
	if cfg.snapshot != "" {
		srv, addr, err := startInProcess(cfg.snapshot, stderr)
		if err != nil {
			return err
		}
		defer srv.Close()
		base = "http://" + addr
	}
	base = strings.TrimRight(base, "/")

	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        cfg.conc * 2,
			MaxIdleConnsPerHost: cfg.conc * 2,
		},
		Timeout: 2 * time.Minute,
	}
	if err := waitHealthy(client, base, 10*time.Second); err != nil {
		return err
	}

	before, scrapeErr := scrapeMetrics(client, base)
	res := drive(cfg, client, base, pool)
	var after map[string]float64
	if scrapeErr == nil {
		after, scrapeErr = scrapeMetrics(client, base)
	}
	if scrapeErr != nil {
		fmt.Fprintf(stderr, "topload: /metrics scrape failed (%v); cache ratios unavailable\n", scrapeErr)
	}

	report(stdout, stderr, cfg, res, before, after, scrapeErr == nil)
	return nil
}

// loadPool builds the text pool from -texts or -synth.
func loadPool(cfg config) ([]string, error) {
	switch {
	case cfg.texts != "" && cfg.synth != "":
		return nil, fmt.Errorf("use -texts or -synth, not both")
	case cfg.texts != "":
		b, err := os.ReadFile(cfg.texts)
		if err != nil {
			return nil, err
		}
		var pool []string
		for _, line := range strings.Split(string(b), "\n") {
			if line = strings.TrimSpace(line); line != "" {
				pool = append(pool, line)
			}
		}
		if len(pool) == 0 {
			return nil, fmt.Errorf("%s: no texts", cfg.texts)
		}
		return pool, nil
	case cfg.synth != "":
		return topmine.GenerateExampleCorpus(cfg.synth, cfg.docs, cfg.seed)
	default:
		return nil, fmt.Errorf("a text pool is required: -texts file or -synth domain")
	}
}

// startInProcess loads a snapshot and serves it on an ephemeral
// loopback port, returning the server and its address.
func startInProcess(path string, stderr io.Writer) (*http.Server, string, error) {
	res, err := topmine.LoadSnapshotFile(path)
	if err != nil {
		return nil, "", err
	}
	inf, err := res.Inferencer()
	if err != nil {
		return nil, "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: serve.New(inf, serve.Options{})}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(stderr, "topload: in-process server: %v\n", err)
		}
	}()
	fmt.Fprintf(stderr, "topload: serving %s in-process on %s\n", path, ln.Addr())
	return srv, ln.Addr().String(), nil
}

func waitHealthy(client *http.Client, base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("target %s unreachable: %w", base, err)
			}
			return fmt.Errorf("target %s not healthy", base)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// result aggregates one load run.
type result struct {
	samples  []sample
	elapsed  time.Duration // measured window
	missed   int64         // open loop: scheduled sends dropped because all workers were busy
	openLoop bool
}

// workload is the per-worker deterministic request generator.
type workload struct {
	rng  *rand.Rand
	zipf *rand.Zipf
	pool []string
	cfg  *config
}

func newWorkload(cfg *config, pool []string, worker int) *workload {
	rng := rand.New(rand.NewSource(int64(cfg.seed) + int64(worker)*7919))
	w := &workload{rng: rng, pool: pool, cfg: cfg}
	if cfg.zipf > 1 && len(pool) > 1 {
		w.zipf = rand.NewZipf(rng, cfg.zipf, 1, uint64(len(pool)-1))
	}
	return w
}

func (w *workload) pick() string {
	if w.zipf == nil {
		return w.pool[w.rng.Intn(len(w.pool))]
	}
	return w.pool[w.zipf.Uint64()]
}

// next builds one request: its op and JSON body.
func (w *workload) next() (op uint8, path string, body []byte) {
	r := w.rng.Float64()
	switch {
	case r < w.cfg.segmentFrac:
		b, _ := json.Marshal(struct {
			Text  string `json:"text"`
			Model string `json:"model,omitempty"`
		}{w.pick(), w.cfg.model})
		return opSegment, "/v1/segment", b
	case r < w.cfg.segmentFrac+w.cfg.batchFrac:
		texts := make([]string, w.cfg.batchSize)
		for i := range texts {
			texts[i] = w.pick()
		}
		b, _ := json.Marshal(struct {
			Texts []string `json:"texts"`
			Iters int      `json:"iters"`
			Model string   `json:"model,omitempty"`
		}{texts, w.cfg.iters, w.cfg.model})
		return opBatch, "/v1/infer", b
	default:
		b, _ := json.Marshal(struct {
			Text  string `json:"text"`
			Iters int    `json:"iters"`
			Model string `json:"model,omitempty"`
		}{w.pick(), w.cfg.iters, w.cfg.model})
		return opInfer, "/v1/infer", b
	}
}

// send issues one request and reports success (HTTP 200).
func send(client *http.Client, base, path string, body []byte) bool {
	resp, err := client.Post(base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// drive runs the configured load and collects samples. Workers record
// only inside the measurement window (after -warmup); the recorded
// elapsed time covers exactly that window.
func drive(cfg config, client *http.Client, base string, pool []string) result {
	var (
		recording atomic.Bool
		missed    atomic.Int64
		mu        sync.Mutex
		all       []sample
	)
	recording.Store(cfg.warmup <= 0)
	start := time.Now()
	measureStart := start.Add(cfg.warmup)
	end := start.Add(cfg.warmup + cfg.duration)
	if cfg.warmup > 0 {
		time.AfterFunc(cfg.warmup, func() { recording.Store(true) })
	}

	record := func(local *[]sample, s sample) {
		if recording.Load() {
			*local = append(*local, s)
		}
	}
	flush := func(local []sample) {
		mu.Lock()
		all = append(all, local...)
		mu.Unlock()
	}

	var wg sync.WaitGroup
	if cfg.qps > 0 {
		// Open loop: a pacer emits scheduled send times; workers pick
		// them up. Latency runs from the *scheduled* time, so time a
		// request spends waiting for a free worker counts against the
		// server — without this, an overloaded server looks artificially
		// fast (coordinated omission). A tick nobody can take within the
		// buffer is counted as missed, and missed>0 flags overload.
		ticks := make(chan time.Time, cfg.conc*4)
		for g := 0; g < cfg.conc; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				w := newWorkload(&cfg, pool, g)
				var local []sample
				for sched := range ticks {
					op, path, body := w.next()
					ok := send(client, base, path, body)
					record(&local, sample{op: op, ok: ok, lat: time.Since(sched)})
				}
				flush(local)
			}(g)
		}
		interval := time.Duration(float64(time.Second) / cfg.qps)
		next := time.Now()
		for time.Now().Before(end) {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			select {
			case ticks <- next:
			default:
				if recording.Load() {
					missed.Add(1)
				}
			}
			next = next.Add(interval)
		}
		close(ticks)
	} else {
		// Closed loop: each worker issues requests back-to-back — the
		// classic saturation benchmark; concurrency is the load knob.
		for g := 0; g < cfg.conc; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				w := newWorkload(&cfg, pool, g)
				var local []sample
				for time.Now().Before(end) {
					op, path, body := w.next()
					t0 := time.Now()
					ok := send(client, base, path, body)
					record(&local, sample{op: op, ok: ok, lat: time.Since(t0)})
				}
				flush(local)
			}(g)
		}
	}
	wg.Wait()
	return result{samples: all, elapsed: time.Since(measureStart), missed: missed.Load(), openLoop: cfg.qps > 0}
}

// scrapeMetrics fetches the un-labelled counters the report needs.
func scrapeMetrics(client *http.Client, base string) (map[string]float64, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics: HTTP %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, line := range strings.Split(string(b), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 || strings.ContainsRune(fields[0], '{') {
			continue
		}
		if v, err := strconv.ParseFloat(fields[1], 64); err == nil {
			out[fields[0]] = v
		}
	}
	return out, nil
}

// dist is a latency distribution summary.
type dist struct {
	n, errs int
	mean    time.Duration
	p50     time.Duration
	p90     time.Duration
	p95     time.Duration
	p99     time.Duration
	max     time.Duration
}

func summarize(samples []sample, op int) dist {
	var lats []time.Duration
	var d dist
	var sum time.Duration
	for _, s := range samples {
		if op >= 0 && int(s.op) != op {
			continue
		}
		d.n++
		if !s.ok {
			d.errs++
			continue
		}
		lats = append(lats, s.lat)
		sum += s.lat
	}
	if len(lats) == 0 {
		return d
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(q float64) time.Duration {
		i := int(math.Ceil(q*float64(len(lats)))) - 1
		if i < 0 {
			i = 0
		}
		return lats[i]
	}
	d.mean = sum / time.Duration(len(lats))
	d.p50, d.p90, d.p95, d.p99 = pct(0.50), pct(0.90), pct(0.95), pct(0.99)
	d.max = lats[len(lats)-1]
	return d
}

func msf(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// report writes the human summary to stderr and bench-format lines to
// stdout (the BENCH_serve.json input via cmd/benchjson).
func report(stdout, stderr io.Writer, cfg config, res result, before, after map[string]float64, scraped bool) {
	overall := summarize(res.samples, -1)
	secs := res.elapsed.Seconds()
	qps := 0.0
	if secs > 0 {
		qps = float64(overall.n) / secs
	}
	errRate := 0.0
	if overall.n > 0 {
		errRate = float64(overall.errs) / float64(overall.n)
	}

	mode := fmt.Sprintf("closed loop, %d workers", cfg.conc)
	if res.openLoop {
		mode = fmt.Sprintf("open loop, target %.0f qps, %d max in-flight", cfg.qps, cfg.conc)
	}
	fmt.Fprintf(stderr, "topload: %s over %.1fs (warmup %s)\n", mode, secs, cfg.warmup)
	fmt.Fprintf(stderr, "  requests: %d (%.1f/s achieved), errors: %d (%.2f%%)\n",
		overall.n, qps, overall.errs, 100*errRate)
	if res.missed > 0 {
		fmt.Fprintf(stderr, "  OVERLOAD: %d scheduled sends found no free worker (raise -conc or lower -qps)\n", res.missed)
	}
	fmt.Fprintf(stderr, "  latency ms: mean %.2f  p50 %.2f  p90 %.2f  p95 %.2f  p99 %.2f  max %.2f\n",
		msf(overall.mean), msf(overall.p50), msf(overall.p90), msf(overall.p95), msf(overall.p99), msf(overall.max))
	for op := 0; op < numOps; op++ {
		d := summarize(res.samples, op)
		if d.n == 0 {
			continue
		}
		fmt.Fprintf(stderr, "  %-8s n=%-7d p50 %.2f  p95 %.2f  p99 %.2f  errs %d\n",
			opNames[op], d.n, msf(d.p50), msf(d.p95), msf(d.p99), d.errs)
	}

	var hitRatio, coalesced, hits, misses float64
	if scraped {
		hits = after["topmined_cache_hits_total"] - before["topmined_cache_hits_total"]
		misses = after["topmined_cache_misses_total"] - before["topmined_cache_misses_total"]
		coalesced = after["topmined_coalesced_total"] - before["topmined_coalesced_total"]
		if hits+misses > 0 {
			hitRatio = hits / (hits + misses)
		}
		fmt.Fprintf(stderr, "  cache: +%.0f hits, +%.0f misses (hit ratio %.1f%%), +%.0f coalesced\n",
			hits, misses, 100*hitRatio, coalesced)
	}

	// Bench-format lines for benchjson. Field layout is the `go test
	// -bench` contract: name, iteration count, then value/unit pairs.
	fmt.Fprintf(stdout, "goos: %s\ngoarch: %s\npkg: topmine/cmd/topload\n", runtime.GOOS, runtime.GOARCH)
	emit := func(name string, d dist, withCache bool) {
		if d.n == 0 {
			return
		}
		er := 0.0
		if d.n > 0 {
			er = float64(d.errs) / float64(d.n)
		}
		fmt.Fprintf(stdout, "BenchmarkServeLoad/%s %d %d ns/op %.1f qps %.3f p50-ms %.3f p95-ms %.3f p99-ms %.4f err-rate",
			name, d.n, d.mean.Nanoseconds(), float64(d.n)/secs, msf(d.p50), msf(d.p95), msf(d.p99), er)
		if withCache && scraped {
			fmt.Fprintf(stdout, " %.4f cache-hit-ratio %.0f coalesced", hitRatio, coalesced)
		}
		fmt.Fprintln(stdout)
	}
	emit("all", overall, true)
	for op := 0; op < numOps; op++ {
		emit(opNames[op], summarize(res.samples, op), false)
	}
}
