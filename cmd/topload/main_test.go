package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"topmine"
)

// TestLoadSmoke trains a tiny pipeline, snapshots it, and drives a
// short hermetic load run against the in-process server: the whole
// topload trajectory (Zipf workload, mixed ops, percentile report,
// metrics scrape, bench-format output) in one pass.
func TestLoadSmoke(t *testing.T) {
	docs, err := topmine.GenerateExampleCorpus("20conf", 200, 11)
	if err != nil {
		t.Fatal(err)
	}
	opt := topmine.DefaultOptions()
	opt.Topics = 3
	opt.Iterations = 20
	opt.SigThreshold = 4
	opt.Seed = 42
	opt.Workers = 1
	res, err := topmine.Run(docs, opt)
	if err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(t.TempDir(), "m.tpm")
	if err := topmine.SaveSnapshotFile(snap, res); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	err = run([]string{
		"-snapshot", snap,
		"-synth", "20conf", "-docs", "50",
		"-duration", "300ms", "-conc", "2",
		"-segment", "0.2", "-batch", "0.1", "-batch-size", "4",
		"-iters", "5",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("topload: %v\nstderr: %s", err, stderr.String())
	}

	out := stdout.String()
	for _, want := range []string{
		"pkg: topmine/cmd/topload",
		"BenchmarkServeLoad/all",
		"qps", "p50-ms", "p99-ms", "err-rate", "cache-hit-ratio",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("bench output missing %q:\n%s\nstderr: %s", want, out, stderr.String())
		}
	}
	report := stderr.String()
	for _, want := range []string{"requests:", "latency ms:", "cache:", "errors: 0 (0.00%)"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
}

// TestFlagValidation pins the mutually-exclusive and range checks.
func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{},                                 // no target
		{"-target", "x", "-snapshot", "y"}, // both
		{"-target", "http://h", "-synth", "20conf", "-segment", "0.9", "-batch", "0.5"}, // mix > 1
		{"-target", "http://h"}, // no text pool
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if err := run(args, &stdout, &stderr); err == nil {
			t.Fatalf("run(%v) accepted invalid flags", args)
		}
	}
}
