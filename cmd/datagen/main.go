// Command datagen writes a synthetic corpus (one document per line)
// for any of the built-in domains modelled on the paper's datasets.
//
//	datagen -domain dblp-abstracts -docs 20000 -o abstracts.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"topmine"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")

	domain := flag.String("domain", "dblp-titles", "domain: "+strings.Join(topmine.ExampleDomains(), ", "))
	docs := flag.Int("docs", 10000, "number of documents")
	seed := flag.Uint64("seed", 1, "random seed")
	out := flag.String("o", "", "output path (default stdout)")
	flag.Parse()

	lines, err := topmine.GenerateExampleCorpus(*domain, *docs, *seed)
	if err != nil {
		log.Fatal(err)
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	for _, line := range lines {
		fmt.Fprintln(w, line)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d documents to %s\n", len(lines), *out)
	}
}
