package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// sampleTrace is a hand-built two-worker run: 3 sweeps, a checkpoint
// at sweep 2, an elastic recovery rolling back to sweep 2, and the
// replayed sweep 3. Worker 1 gates two of the four barriers.
const sampleTrace = `{"ev":"run","t_ms":0.1,"total_sweeps":3,"start_sweep":0,"tokens_per_sweep":1000,"want_workers":2}
{"ev":"setup","t_ms":5,"from_sweep":1,"workers":2}
{"ev":"delta","t_ms":10,"sweep":1,"worker":0,"arrival_ms":4,"lag_ms":0,"sample_ms":3.5,"bytes":100,"rows":10}
{"ev":"delta","t_ms":10,"sweep":1,"worker":1,"arrival_ms":5,"lag_ms":1,"sample_ms":4.5,"bytes":120,"rows":12}
{"ev":"sweep","t_ms":10,"sweep":1,"workers":2,"sample_ms":5,"reconcile_ms":1,"gating_worker":1,"gating_lag_ms":1,"tokens_per_sec":166666}
{"ev":"delta","t_ms":16,"sweep":2,"worker":0,"arrival_ms":4.5,"lag_ms":0.5,"sample_ms":4,"bytes":100,"rows":10}
{"ev":"delta","t_ms":16,"sweep":2,"worker":1,"arrival_ms":4,"lag_ms":0,"sample_ms":3.6,"bytes":120,"rows":12}
{"ev":"checkpoint","t_ms":18,"sweep":2,"write_ms":2,"path":"ck.tpd"}
{"ev":"sweep","t_ms":18,"sweep":2,"workers":2,"sample_ms":4.5,"reconcile_ms":1,"checkpoint_ms":2,"gating_worker":0,"gating_lag_ms":0.5,"tokens_per_sec":133333}
{"ev":"delta","t_ms":25,"sweep":3,"worker":0,"arrival_ms":4,"lag_ms":0,"sample_ms":3.5,"bytes":100,"rows":10}
{"ev":"recovery","t_ms":30,"rollback_sweep":2,"lost_worker":1,"survivors":1,"reaccepted":1,"cause":"read frame: EOF"}
{"ev":"setup","t_ms":32,"from_sweep":3,"workers":2}
{"ev":"delta","t_ms":40,"sweep":3,"worker":0,"arrival_ms":4,"lag_ms":0,"sample_ms":3.5,"bytes":100,"rows":10}
{"ev":"delta","t_ms":40,"sweep":3,"worker":1,"arrival_ms":6,"lag_ms":2,"sample_ms":5.5,"bytes":120,"rows":12}
{"ev":"sweep","t_ms":40,"sweep":3,"workers":2,"sample_ms":6,"reconcile_ms":1.2,"gating_worker":1,"gating_lag_ms":2,"tokens_per_sec":138888}
{"ev":"finish","t_ms":41}
`

func runSample(t *testing.T, extra ...string) (stdout, stderr string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := os.WriteFile(path, []byte(sampleTrace), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	if err := run(append(extra, path), &out, &errw); err != nil {
		t.Fatalf("run: %v", err)
	}
	return out.String(), errw.String()
}

func TestReportTimeline(t *testing.T) {
	_, stderr := runSample(t)
	for _, want := range []string{
		"trace: 3 barriers, 1 checkpoints, 1 recoveries, 2 epochs",
		"schedule: 3 sweeps, 1000 tokens/sweep, 2 workers wanted",
		"run completed",
		"phase split: sample",
		"straggler attribution",
		"worker 0: gated 1/3 barriers (33.3%)",
		"worker 1: gated 2/3 barriers (66.7%)",
		"barrier timeline",
		"sweep    1: sample 5ms",
		"gated by worker 1 (+1ms)",
		"checkpoint 2ms",
		"recovery at t=30ms: lost worker 1 (read frame: EOF), rolled back to sweep 2, 1 survivors, 1 re-accepted",
	} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stderr missing %q:\n%s", want, stderr)
		}
	}
	// The interrupted sweep-3 attempt (one delta, then the recovery)
	// must not pollute a completed barrier: worker 0 sampled exactly 3
	// counted barriers.
	if strings.Contains(stderr, "gated 1/4") || strings.Contains(stderr, "4 barriers,") {
		t.Errorf("interrupted barrier was counted as completed:\n%s", stderr)
	}
}

// TestBenchLines pins the stdout contract: `go test -bench` shaped
// lines — name, integer iteration count, then value/unit pairs — the
// exact format cmd/benchjson parses.
func TestBenchLines(t *testing.T) {
	stdout, _ := runSample(t)
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) < 4 {
		t.Fatalf("want header + bench lines, got:\n%s", stdout)
	}
	for _, want := range []string{"goos: ", "goarch: ", "pkg: topmine/cmd/toptrace"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q", want)
		}
	}
	var benches []string
	for _, line := range lines {
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		benches = append(benches, line)
		f := strings.Fields(line)
		if len(f) < 4 || len(f)%2 != 0 {
			t.Errorf("bench line has %d fields, want even >= 4: %q", len(f), line)
			continue
		}
		if _, err := strconv.ParseInt(f[1], 10, 64); err != nil {
			t.Errorf("iterations %q not an int in %q", f[1], line)
		}
		for i := 2; i < len(f); i += 2 {
			if _, err := strconv.ParseFloat(f[i], 64); err != nil {
				t.Errorf("value %q not a number in %q", f[i], line)
			}
		}
	}
	joined := strings.Join(benches, "\n")
	for _, want := range []string{
		"BenchmarkTraceSweep 3 ",
		"BenchmarkTraceCheckpoint 1 ",
		"BenchmarkTraceRecovery 1 ",
		"BenchmarkTraceWorker/w0 3 ",
		"BenchmarkTraceWorker/w1 3 ",
	} {
		if !strings.Contains(joined+"\n", want) {
			t.Errorf("bench lines missing %q:\n%s", want, joined)
		}
	}
}

func TestTimelineCap(t *testing.T) {
	_, stderr := runSample(t, "-timeline", "1")
	if !strings.Contains(stderr, "(1 slowest of 3 by barrier wait") {
		t.Errorf("timeline cap note missing:\n%s", stderr)
	}
	// Sweep 3 has the largest sample_ms (6ms) — it is the one kept.
	if !strings.Contains(stderr, "sweep    3:") || strings.Contains(stderr, "sweep    1:") {
		t.Errorf("cap kept the wrong barriers:\n%s", stderr)
	}
}

func TestParseErrors(t *testing.T) {
	var out, errw bytes.Buffer
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.jsonl")
	os.WriteFile(bad, []byte("{\"ev\":\"run\"}\nnot json\n"), 0o644)
	if err := run([]string{bad}, &out, &errw); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("want line-2 parse error, got %v", err)
	}
	empty := filepath.Join(dir, "empty.jsonl")
	os.WriteFile(empty, nil, 0o644)
	if err := run([]string{empty}, &out, &errw); err == nil || !strings.Contains(err.Error(), "no trace events") {
		t.Errorf("want no-events error, got %v", err)
	}
	noev := filepath.Join(dir, "noev.jsonl")
	os.WriteFile(noev, []byte("{\"t_ms\":1}\n"), 0o644)
	if err := run([]string{noev}, &out, &errw); err == nil || !strings.Contains(err.Error(), "discriminator") {
		t.Errorf("want discriminator error, got %v", err)
	}
}
