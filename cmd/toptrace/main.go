// Command toptrace replays a structured training trace (the JSONL
// file written by `topmine -train-coordinator ... -trace out.jsonl`)
// into a human barrier timeline with straggler attribution: which
// worker gated each sweep barrier, how the run's wall time split
// between sampling, reconciliation and checkpointing, and what the
// elastic recoveries cost.
//
// The human report goes to stderr. Stdout carries `go test -bench`
// format summary lines for benchjson, so CI can archive a run's
// barrier profile next to the other BENCH_*.json artifacts:
//
//	topmine -train-coordinator :7600 -train-workers 2 -corpus c.tpc \
//	        -trace trace.jsonl ...
//	toptrace trace.jsonl | benchjson -out BENCH_train_trace.json
//
// Usage:
//
//	toptrace [-timeline N] [trace.jsonl]
//
// With no positional argument the trace is read from stdin.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"sort"
	"time"
)

// event is the union of every trace event shape dtrain emits; Ev
// discriminates. Field names mirror internal/dtrain's trace structs —
// toptrace deliberately parses the wire format rather than importing
// them, so it keeps working on logs from other builds.
type event struct {
	Ev  string  `json:"ev"`
	TMs float64 `json:"t_ms"`

	// run
	TotalSweeps    int   `json:"total_sweeps"`
	StartSweep     int   `json:"start_sweep"`
	TokensPerSweep int64 `json:"tokens_per_sweep"`
	WantWorkers    int   `json:"want_workers"`
	Resumed        bool  `json:"resumed"`

	// setup
	FromSweep int `json:"from_sweep"`
	Workers   int `json:"workers"`

	// delta
	Sweep     int     `json:"sweep"`
	Worker    int     `json:"worker"`
	ArrivalMs float64 `json:"arrival_ms"`
	LagMs     float64 `json:"lag_ms"`
	SampleMs  float64 `json:"sample_ms"`
	Bytes     int64   `json:"bytes"`
	Rows      int64   `json:"rows"`

	// sweep
	ReconcileMs  float64 `json:"reconcile_ms"`
	CheckpointMs float64 `json:"checkpoint_ms"`
	GatingWorker int     `json:"gating_worker"`
	GatingLagMs  float64 `json:"gating_lag_ms"`
	TokensPerSec float64 `json:"tokens_per_sec"`

	// checkpoint
	WriteMs float64 `json:"write_ms"`
	Path    string  `json:"path"`

	// recovery
	RollbackSweep int    `json:"rollback_sweep"`
	LostWorker    int    `json:"lost_worker"`
	Survivors     int    `json:"survivors"`
	Reaccepted    int    `json:"reaccepted"`
	Cause         string `json:"cause"`

	// finish
	Error string `json:"error"`
}

// barrier is one completed sweep barrier with its worker deltas
// attached, in trace order (the same sweep number recurs when an
// elastic rollback replays sweeps).
type barrier struct {
	ev     event
	deltas []event
}

// workerStats accumulates one worker index's straggler profile across
// every barrier it participated in.
type workerStats struct {
	barriers int
	gated    int
	lagMs    float64 // sum
	sampleMs float64 // sum
	maxLagMs float64
	bytes    int64
	rows     int64
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("toptrace: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("toptrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	timeline := fs.Int("timeline", 20, "barriers to show in the timeline: the N slowest by barrier wait (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var in io.Reader = os.Stdin
	name := "stdin"
	if fs.NArg() > 1 {
		return fmt.Errorf("want at most one trace file, have %d", fs.NArg())
	}
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
		name = fs.Arg(0)
	}

	events, err := parseTrace(in)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	if len(events) == 0 {
		return fmt.Errorf("%s: no trace events", name)
	}
	report(events, *timeline, stdout, stderr)
	return nil
}

// parseTrace reads a JSONL trace, skipping blank lines. A malformed
// line is an error: a trace either replays exactly or not at all.
func parseTrace(r io.Reader) ([]event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var evs []event
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var ev event
		if err := json.Unmarshal(b, &ev); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if ev.Ev == "" {
			return nil, fmt.Errorf("line %d: event without ev discriminator", line)
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return evs, nil
}

func report(events []event, timeline int, stdout, stderr io.Writer) {
	var runEv, finish *event
	var setups, checkpoints, recoveries []event
	var barriers []barrier
	var pending []event // deltas awaiting their sweep event
	for i := range events {
		ev := &events[i]
		switch ev.Ev {
		case "run":
			if runEv == nil {
				runEv = ev
			}
		case "setup":
			setups = append(setups, *ev)
		case "delta":
			pending = append(pending, *ev)
		case "sweep":
			barriers = append(barriers, barrier{ev: *ev, deltas: pending})
			pending = nil
		case "checkpoint":
			checkpoints = append(checkpoints, *ev)
		case "recovery":
			recoveries = append(recoveries, *ev)
			pending = nil // a barrier that never completed
		case "finish":
			finish = ev
		}
	}

	// Run summary.
	fmt.Fprintf(stderr, "trace: %d barriers, %d checkpoints, %d recoveries, %d epochs\n",
		len(barriers), len(checkpoints), len(recoveries), len(setups))
	if runEv != nil {
		resumed := ""
		if runEv.Resumed {
			resumed = fmt.Sprintf(", resumed from sweep %d", runEv.StartSweep)
		}
		fmt.Fprintf(stderr, "schedule: %d sweeps, %d tokens/sweep, %d workers wanted%s\n",
			runEv.TotalSweeps, runEv.TokensPerSweep, runEv.WantWorkers, resumed)
	}
	wall := events[len(events)-1].TMs - events[0].TMs
	status := "incomplete (no finish event)"
	if finish != nil {
		if finish.Error != "" {
			status = "failed: " + finish.Error
		} else {
			status = "completed"
		}
	}
	fmt.Fprintf(stderr, "wall: %v first to last event, run %s\n", ms(wall), status)

	if len(barriers) == 0 {
		fmt.Fprintln(stderr, "no completed sweep barriers in trace")
		return
	}

	// Phase split: where the sweep loop's time went.
	var sampleMs, reconcileMs, ckptMs float64
	for _, b := range barriers {
		sampleMs += b.ev.SampleMs
		reconcileMs += b.ev.ReconcileMs
		ckptMs += b.ev.CheckpointMs
	}
	total := sampleMs + reconcileMs + ckptMs
	if total > 0 {
		fmt.Fprintf(stderr, "phase split: sample %.1f%% (%v), reconcile %.1f%% (%v), checkpoint %.1f%% (%v)\n",
			100*sampleMs/total, ms(sampleMs),
			100*reconcileMs/total, ms(reconcileMs),
			100*ckptMs/total, ms(ckptMs))
	}

	// Straggler attribution per worker index.
	workers := map[int]*workerStats{}
	for _, b := range barriers {
		for _, d := range b.deltas {
			ws := workers[d.Worker]
			if ws == nil {
				ws = &workerStats{}
				workers[d.Worker] = ws
			}
			ws.barriers++
			ws.lagMs += d.LagMs
			ws.sampleMs += d.SampleMs
			ws.maxLagMs = max(ws.maxLagMs, d.LagMs)
			ws.bytes += d.Bytes
			ws.rows += d.Rows
		}
		if ws := workers[b.ev.GatingWorker]; ws != nil {
			ws.gated++
		}
	}
	ids := make([]int, 0, len(workers))
	for id := range workers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	if len(ids) > 0 {
		fmt.Fprintln(stderr, "straggler attribution (which worker gated each barrier):")
		for _, id := range ids {
			ws := workers[id]
			n := float64(ws.barriers)
			fmt.Fprintf(stderr, "  worker %d: gated %d/%d barriers (%.1f%%), mean lag %v (max %v), mean sample %v, %d delta bytes\n",
				id, ws.gated, len(barriers), 100*float64(ws.gated)/float64(len(barriers)),
				ms(ws.lagMs/n), ms(ws.maxLagMs), ms(ws.sampleMs/n), ws.bytes)
		}
	}

	// Barrier timeline: every barrier, or the N slowest by barrier
	// wait when the trace is long.
	show := barriers
	slowest := ""
	if timeline > 0 && len(barriers) > timeline {
		show = append([]barrier(nil), barriers...)
		sort.SliceStable(show, func(i, j int) bool { return show[i].ev.SampleMs > show[j].ev.SampleMs })
		show = show[:timeline]
		sort.SliceStable(show, func(i, j int) bool { return show[i].ev.TMs < show[j].ev.TMs })
		slowest = fmt.Sprintf(" (%d slowest of %d by barrier wait; -timeline 0 shows all)", timeline, len(barriers))
	}
	fmt.Fprintf(stderr, "barrier timeline%s:\n", slowest)
	for _, b := range show {
		line := fmt.Sprintf("  t=%8v sweep %4d: sample %v, reconcile %v, gated by worker %d (+%v)",
			ms(b.ev.TMs), b.ev.Sweep, ms(b.ev.SampleMs), ms(b.ev.ReconcileMs),
			b.ev.GatingWorker, ms(b.ev.GatingLagMs))
		if b.ev.CheckpointMs > 0 {
			line += fmt.Sprintf(", checkpoint %v", ms(b.ev.CheckpointMs))
		}
		fmt.Fprintln(stderr, line)
	}

	for _, r := range recoveries {
		fmt.Fprintf(stderr, "recovery at t=%v: lost worker %d (%s), rolled back to sweep %d, %d survivors, %d re-accepted\n",
			ms(r.TMs), r.LostWorker, r.Cause, r.RollbackSweep, r.Survivors, r.Reaccepted)
	}

	benchLines(barriers, checkpoints, recoveries, ids, workers, stdout)
}

// benchLines writes `go test -bench`-shaped summary lines: name,
// iteration count, then value/unit pairs — the contract benchjson
// parses into BENCH_*.json artifacts.
func benchLines(barriers []barrier, checkpoints, recoveries []event,
	ids []int, workers map[int]*workerStats, stdout io.Writer) {
	fmt.Fprintf(stdout, "goos: %s\ngoarch: %s\npkg: topmine/cmd/toptrace\n", runtime.GOOS, runtime.GOARCH)
	n := float64(len(barriers))
	var sampleMs, reconcileMs, ckptMs, gateMs, tps float64
	for _, b := range barriers {
		sampleMs += b.ev.SampleMs
		reconcileMs += b.ev.ReconcileMs
		ckptMs += b.ev.CheckpointMs
		gateMs += b.ev.GatingLagMs
		tps += b.ev.TokensPerSec
	}
	barrierNs := (sampleMs + reconcileMs + ckptMs) / n * 1e6
	fmt.Fprintf(stdout, "BenchmarkTraceSweep %d %d ns/op %.1f tokens/s %.3f sample-ms %.3f reconcile-ms %.3f gate-lag-ms\n",
		len(barriers), int64(barrierNs), tps/n, sampleMs/n, reconcileMs/n, gateMs/n)
	if len(checkpoints) > 0 {
		var writeMs float64
		for _, c := range checkpoints {
			writeMs += c.WriteMs
		}
		mean := writeMs / float64(len(checkpoints))
		fmt.Fprintf(stdout, "BenchmarkTraceCheckpoint %d %d ns/op %.3f write-ms\n",
			len(checkpoints), int64(mean*1e6), mean)
	}
	if len(recoveries) > 0 {
		fmt.Fprintf(stdout, "BenchmarkTraceRecovery %d %d ns/op\n", len(recoveries), int64(0))
	}
	for _, id := range ids {
		ws := workers[id]
		wn := float64(ws.barriers)
		fmt.Fprintf(stdout, "BenchmarkTraceWorker/w%d %d %d ns/op %.3f lag-ms %.3f sample-ms %d gated\n",
			id, ws.barriers, int64(ws.sampleMs/wn*1e6), ws.lagMs/wn, ws.sampleMs/wn, ws.gated)
	}
}

// ms renders a millisecond quantity with time.Duration's adaptive
// formatting, keeping microsecond barriers and minute sweeps equally
// readable.
func ms(v float64) time.Duration {
	return time.Duration(v * float64(time.Millisecond)).Round(time.Microsecond)
}
