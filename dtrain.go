package topmine

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"topmine/internal/core"
	"topmine/internal/dtrain"
	"topmine/internal/topicmodel"
)

// This file is the public face of distributed training
// (internal/dtrain): one coordinator process owning the model and the
// sweep schedule, plus worker processes each training one contiguous
// document range of a shared .tpc corpus file. Every worker draw
// replicates the corresponding in-process TopicWorkers goroutine bit
// for bit, so a distributed run's topics are byte-identical to
// `Options.TopicWorkers = N` with the same topology (worker count,
// seed) — and, like that sampler, deliberately different from the
// serial one: the AD-LDA approximation, deterministic per topology.
//
//	# coordinator (requires the .tpc path to resolve on all hosts)
//	res, err := topmine.TrainDistributed("corpus.tpc", opt,
//	    topmine.DistributedOptions{Addr: "127.0.0.1:7600", Workers: 2})
//
//	# each worker process
//	err := topmine.ServeTrainingWorker("127.0.0.1:7600",
//	    topmine.TrainingWorkerOptions{})

// SweepStats is one sweep's timing breakdown from parallel or
// distributed training: Sample is the barrier wait for the slowest
// worker, Reconcile the delta fold + (for distributed runs) the
// rebroadcast, WorkerSample the per-worker sample times, Checkpoint
// the barrier's .tpd write (zero when none happened), Recovered the
// cumulative count of workers re-accepted after failures.
type SweepStats = topicmodel.SweepStats

// CheckpointSpec configures barrier checkpointing of a distributed
// run: Path is the .tpd file the coordinator atomically rewrites,
// Every the sweep cadence (default 50 when Path is set).
type CheckpointSpec = dtrain.CheckpointSpec

// Named distributed-training failure classes.
var (
	// ErrWorkerLost is returned by TrainDistributed when a worker
	// process dies or misses a barrier deadline mid-run and the run is
	// not elastic (or its recovery budget is exhausted).
	ErrWorkerLost = dtrain.ErrWorkerLost
	// ErrCoordinatorLost is returned by ServeTrainingWorker when the
	// coordinator connection dies mid-run and TrainingWorkerOptions.
	// Reconnect is zero (otherwise the worker re-dials).
	ErrCoordinatorLost = dtrain.ErrCoordinatorLost
	// ErrCheckpointCorrupt is wrapped by every torn/bit-rotted .tpd
	// failure from ResumeDistributed's checkpoint read.
	ErrCheckpointCorrupt = dtrain.ErrCkptChecksum
	// ErrCheckpointMismatch is returned by ResumeDistributed when the
	// corpus file (or the mining/segmentation options) does not rebuild
	// the documents the checkpoint was trained against.
	ErrCheckpointMismatch = dtrain.ErrCorpusMismatch
)

// DistributedOptions configures the coordinator side of a distributed
// training run.
type DistributedOptions struct {
	// Addr is the address to listen on for workers, e.g.
	// "127.0.0.1:7600" for same-host workers or ":7600" to accept
	// workers from other hosts.
	Addr string
	// Workers is the number of worker processes the run waits for. The
	// trained model depends on it (more workers = more AD-LDA shards),
	// so it is part of the reproducibility contract alongside the seed.
	Workers int
	// AcceptTimeout bounds the wait for all workers to connect
	// (default 60s).
	AcceptTimeout time.Duration
	// BarrierTimeout bounds every per-worker frame exchange; a worker
	// that dies or stalls past it fails the run with ErrWorkerLost —
	// or triggers recovery when Elastic is set (default 120s).
	BarrierTimeout time.Duration
	// Checkpoint enables barrier checkpoints: at the configured sweep
	// cadence (and with state also captured at every hyperparameter
	// barrier) the coordinator writes the globally synchronized model
	// state — priors, every document's assignments, sweep number, RNG
	// position, corpus checksum — to a CRC-checked .tpd file via temp
	// file + rename. ResumeDistributed restarts a dead run from it.
	Checkpoint CheckpointSpec
	// Elastic keeps the run alive when workers are lost: the
	// coordinator rolls back to the last synchronized barrier snapshot,
	// re-accepts replacements for up to ReacceptTimeout, re-shards and
	// continues. If the worker count ends up unchanged, the final model
	// is byte-identical to an uninterrupted run.
	Elastic bool
	// ReacceptTimeout bounds the wait for replacement workers during
	// one elastic recovery (default 15s); when it elapses the run
	// continues with the survivors.
	ReacceptTimeout time.Duration
	// MaxRecoveries caps elastic recoveries per run (default 5).
	MaxRecoveries int
	// SweepStats, when set, receives one timing breakdown per sweep.
	SweepStats func(SweepStats)
	// StatusAddr, when non-empty, serves a live status plane for the
	// run over HTTP on that address (e.g. "127.0.0.1:7700", or
	// "127.0.0.1:0" for an ephemeral port reported via Logf):
	// /metrics (Prometheus text, the topmine_train_* series),
	// /v1/progress (a TrainingProgress JSON snapshot) and
	// /debug/pprof/*. The server lives for the duration of the run and
	// reads atomic snapshots only — it never touches the sweep barrier
	// path.
	StatusAddr string
	// TraceLog, when non-nil, receives the structured training trace:
	// one JSON line per run/setup/worker-delta/sweep/checkpoint/
	// recovery/finish event with monotonic t_ms timestamps. The
	// cmd/toptrace analyzer replays it into a barrier timeline with
	// straggler attribution. Purely observational: enabling it does not
	// change the trained model.
	TraceLog io.Writer
	// Logf, when set, receives lifecycle log lines.
	Logf func(format string, args ...any)
}

// TrainingProgress is the JSON schema served at the status plane's
// /v1/progress endpoint; see DistributedOptions.StatusAddr.
type TrainingProgress = dtrain.Progress

func (dopt DistributedOptions) internal() dtrain.Options {
	return dtrain.Options{
		Workers:         dopt.Workers,
		AcceptTimeout:   dopt.AcceptTimeout,
		BarrierTimeout:  dopt.BarrierTimeout,
		Checkpoint:      dopt.Checkpoint,
		Elastic:         dopt.Elastic,
		ReacceptTimeout: dopt.ReacceptTimeout,
		MaxRecoveries:   dopt.MaxRecoveries,
		SweepStats:      dopt.SweepStats,
		Logf:            dopt.Logf,
	}
}

// TrainingWorkerOptions configures one ServeTrainingWorker call.
type TrainingWorkerOptions struct {
	// CorpusPath overrides the coordinator-sent corpus path, for
	// workers on hosts where the .tpc lives elsewhere. Empty uses the
	// coordinator's path.
	CorpusPath string
	// DialTimeout bounds the connection attempt, retrying while the
	// coordinator is not yet listening (default 60s).
	DialTimeout time.Duration
	// BarrierTimeout bounds every frame exchange with the coordinator
	// (default 120s).
	BarrierTimeout time.Duration
	// Reconnect, when positive, makes the worker survive a coordinator
	// loss: each time the connection dies mid-run it re-dials for up to
	// this long (jittered exponential backoff) and serves the next job
	// — typically a coordinator restarted with -resume. Explicit aborts
	// and protocol errors are never retried.
	Reconnect time.Duration
	// Logf, when set, receives lifecycle log lines.
	Logf func(format string, args ...any)
}

// TrainDistributed trains a topic model over the corpus file at path
// using opt.Workers external worker processes instead of in-process
// goroutines: it listens on dopt.Addr, waits for the workers, assigns
// each a disjoint document range, and runs the sweep-barrier protocol
// to completion. Stored mining and segmentation artifacts are reused
// exactly as RunCorpusFile would; workers rebuild their shards from
// their own mapping of the corpus file, so document token data never
// crosses the wire.
//
// The returned Result is bit-identical to RunCorpusFile with
// opt.TopicWorkers = dopt.Workers (same seed, same worker count) when
// dopt.Workers >= 2. A single distributed worker has no in-process
// twin — TopicWorkers 1 selects the exact serial sampler, which no
// sharded run reproduces — so Workers 1 is supported but only
// comparable to other distributed runs. By default any worker failure
// fails the whole run (ErrWorkerLost for deaths and stalls);
// dopt.Elastic recovers from lost workers instead, and dopt.Checkpoint
// + ResumeDistributed survive coordinator death too.
func TrainDistributed(path string, opt Options, dopt DistributedOptions) (*Result, error) {
	return runDistributed(path, opt, dopt, dtrain.Train)
}

// ResumeDistributed restarts a dead distributed run from a .tpd
// barrier checkpoint written by a TrainDistributed coordinator with
// DistributedOptions.Checkpoint set. Any worker count works — shards
// are recomputed after the restore — and the training schedule
// (iterations, hyperparameter cadence) comes from the checkpoint.
// opt must carry the same mining/segmentation parameters as the
// original run: the rebuilt documents are verified against the
// checkpoint's corpus checksum (ErrCheckpointMismatch otherwise)
// before any worker is accepted. A resumed run's final model is
// byte-identical to a fresh run launched from that checkpoint state
// with the same worker count.
func ResumeDistributed(path, ckptPath string, opt Options, dopt DistributedOptions) (*Result, error) {
	ck, err := dtrain.ReadCheckpointFile(ckptPath)
	if err != nil {
		return nil, err
	}
	return runDistributed(path, opt, dopt, func(ln net.Listener, job dtrain.Job, iopt dtrain.Options) (*topicmodel.Model, error) {
		return dtrain.Resume(ln, job, ck, iopt)
	})
}

// runDistributed is the shared coordinator-side harness: open (and
// possibly re-mine) the corpus, listen, stand up the observability
// plane when requested, run the protocol via train, wrap the trained
// model into a Result.
func runDistributed(path string, opt Options, dopt DistributedOptions, train func(net.Listener, dtrain.Job, dtrain.Options) (*topicmodel.Model, error)) (*Result, error) {
	if err := opt.fill(); err != nil {
		return nil, err
	}
	if opt.TopicWorkers > 1 {
		return nil, fmt.Errorf("topmine: TrainDistributed: TopicWorkers selects the in-process sampler; set DistributedOptions.Workers instead")
	}
	cf, err := OpenCorpusFile(path)
	if err != nil {
		return nil, err
	}
	// The handle's reference transfers to the Result on success; every
	// earlier exit must release it.
	c := cf.Corpus()
	var mined *MinedPhrases
	var segs []*SegmentedDoc
	if cf.CanReuseArtifacts(opt) {
		mined = cf.Mined()
		segs = cf.Segmented()
	}
	if mined == nil {
		mined = core.Mine(c, toCoreConfig(opt, nil))
	}
	if segs == nil {
		segs = core.Segment(c, mined, toCoreConfig(opt, nil))
	}
	docs := topicmodel.DocsFromSegmentation(c, segs)

	ln, err := net.Listen("tcp", dopt.Addr)
	if err != nil {
		cf.Close()
		return nil, fmt.Errorf("topmine: TrainDistributed: %w", err)
	}
	defer ln.Close()

	iopt := dopt.internal()
	if dopt.StatusAddr != "" || dopt.TraceLog != nil {
		iopt.Telemetry = dtrain.NewTelemetry(dopt.TraceLog)
	}
	if dopt.StatusAddr != "" {
		statusLn, err := net.Listen("tcp", dopt.StatusAddr)
		if err != nil {
			cf.Close()
			return nil, fmt.Errorf("topmine: TrainDistributed: status plane: %w", err)
		}
		srv := &http.Server{Handler: iopt.Telemetry.Handler(), ReadHeaderTimeout: 10 * time.Second}
		go srv.Serve(statusLn)
		// The plane serves the final "done"/"failed" snapshot until the
		// run returns; in-flight scrapes after that race the close, which
		// is fine for a monitoring endpoint.
		defer srv.Close()
		if dopt.Logf != nil {
			dopt.Logf("topmine: training status plane on http://%s (/metrics, /v1/progress, /debug/pprof/)", statusLn.Addr())
		}
	}

	model, err := train(ln, dtrain.Job{
		CorpusPath:   path,
		Docs:         docs,
		VocabSize:    c.Vocab.Size(),
		Mined:        mined,
		SigAlpha:     opt.SigThreshold,
		MaxPhraseLen: opt.MaxPhraseLen,
		Model:        toModelOptions(opt, nil),
	}, iopt)
	if err != nil {
		cf.Close()
		return nil, err
	}
	res := &Result{Corpus: c, Mined: mined, Segmented: segs, Model: model, Options: opt}
	res.Topics = model.Visualize(c, visualizeOptions(opt))
	res.closer = &resultCloser{cf: cf} // adopts the open handle's reference
	return res, nil
}

// ServeTrainingWorker serves one distributed training job as a worker:
// it dials the coordinator at addr (retrying with jittered exponential
// backoff until it is listening), rebuilds its assigned document range
// from the corpus file, and answers sweep barriers until training
// completes. It returns nil after a successful run and an error
// describing the cause when the run aborts (local failure, coordinator
// abort, lost connection). With wopt.Reconnect set, a lost coordinator
// connection re-dials instead of failing — the path by which a worker
// fleet rides out a coordinator restart + resume.
func ServeTrainingWorker(addr string, wopt TrainingWorkerOptions) error {
	dialTimeout := wopt.DialTimeout
	for {
		conn, err := dtrain.Dial(addr, dialTimeout)
		if err != nil {
			return err
		}
		err = dtrain.RunWorker(conn, dtrain.WorkerOptions{
			CorpusPath:     wopt.CorpusPath,
			BarrierTimeout: wopt.BarrierTimeout,
			Logf:           wopt.Logf,
		})
		if err == nil || wopt.Reconnect <= 0 || !errors.Is(err, dtrain.ErrCoordinatorLost) {
			return err
		}
		if wopt.Logf != nil {
			wopt.Logf("topmine: worker lost coordinator (%v); re-dialing %s for up to %v", err, addr, wopt.Reconnect)
		}
		// Each loss grants one fresh Reconnect window for the re-dial;
		// a coordinator that stays down ends the worker when it closes.
		dialTimeout = wopt.Reconnect
	}
}

// TrainModelWithSweepStats is TrainModel with a per-sweep timing hook.
// Only parallel training (opt.TopicWorkers > 1) reports — the serial
// sampler has no barrier to break down.
func TrainModelWithSweepStats(c *Corpus, segs []*SegmentedDoc, opt Options, stats func(SweepStats)) *Model {
	cfg := toCoreConfig(opt, nil)
	cfg.SweepStats = stats
	_, m := core.Train(c, segs, cfg)
	return m
}
