package topmine

import (
	"fmt"
	"net"
	"time"

	"topmine/internal/core"
	"topmine/internal/dtrain"
	"topmine/internal/topicmodel"
)

// This file is the public face of distributed training
// (internal/dtrain): one coordinator process owning the model and the
// sweep schedule, plus worker processes each training one contiguous
// document range of a shared .tpc corpus file. Every worker draw
// replicates the corresponding in-process TopicWorkers goroutine bit
// for bit, so a distributed run's topics are byte-identical to
// `Options.TopicWorkers = N` with the same topology (worker count,
// seed) — and, like that sampler, deliberately different from the
// serial one: the AD-LDA approximation, deterministic per topology.
//
//	# coordinator (requires the .tpc path to resolve on all hosts)
//	res, err := topmine.TrainDistributed("corpus.tpc", opt,
//	    topmine.DistributedOptions{Addr: "127.0.0.1:7600", Workers: 2})
//
//	# each worker process
//	err := topmine.ServeTrainingWorker("127.0.0.1:7600",
//	    topmine.TrainingWorkerOptions{})

// SweepStats is one sweep's timing breakdown from parallel or
// distributed training: Sample is the barrier wait for the slowest
// worker, Reconcile the delta fold + (for distributed runs) the
// rebroadcast, WorkerSample the per-worker sample times.
type SweepStats = topicmodel.SweepStats

// ErrWorkerLost is returned by TrainDistributed when a worker process
// dies or misses a barrier deadline mid-run. Shard state lives only in
// workers, so the run aborts loudly instead of hanging or degrading.
var ErrWorkerLost = dtrain.ErrWorkerLost

// DistributedOptions configures the coordinator side of a distributed
// training run.
type DistributedOptions struct {
	// Addr is the address to listen on for workers, e.g.
	// "127.0.0.1:7600" for same-host workers or ":7600" to accept
	// workers from other hosts.
	Addr string
	// Workers is the number of worker processes the run waits for. The
	// trained model depends on it (more workers = more AD-LDA shards),
	// so it is part of the reproducibility contract alongside the seed.
	Workers int
	// AcceptTimeout bounds the wait for all workers to connect
	// (default 60s).
	AcceptTimeout time.Duration
	// BarrierTimeout bounds every per-worker frame exchange; a worker
	// that dies or stalls past it fails the run with ErrWorkerLost
	// (default 120s).
	BarrierTimeout time.Duration
	// SweepStats, when set, receives one timing breakdown per sweep.
	SweepStats func(SweepStats)
	// Logf, when set, receives lifecycle log lines.
	Logf func(format string, args ...any)
}

// TrainingWorkerOptions configures one ServeTrainingWorker call.
type TrainingWorkerOptions struct {
	// CorpusPath overrides the coordinator-sent corpus path, for
	// workers on hosts where the .tpc lives elsewhere. Empty uses the
	// coordinator's path.
	CorpusPath string
	// DialTimeout bounds the connection attempt, retrying while the
	// coordinator is not yet listening (default 60s).
	DialTimeout time.Duration
	// BarrierTimeout bounds every frame exchange with the coordinator
	// (default 120s).
	BarrierTimeout time.Duration
	// Logf, when set, receives lifecycle log lines.
	Logf func(format string, args ...any)
}

// TrainDistributed trains a topic model over the corpus file at path
// using opt.Workers external worker processes instead of in-process
// goroutines: it listens on dopt.Addr, waits for the workers, assigns
// each a disjoint document range, and runs the sweep-barrier protocol
// to completion. Stored mining and segmentation artifacts are reused
// exactly as RunCorpusFile would; workers rebuild their shards from
// their own mapping of the corpus file, so document token data never
// crosses the wire.
//
// The returned Result is bit-identical to RunCorpusFile with
// opt.TopicWorkers = dopt.Workers (same seed, same worker count) when
// dopt.Workers >= 2. A single distributed worker has no in-process
// twin — TopicWorkers 1 selects the exact serial sampler, which no
// sharded run reproduces — so Workers 1 is supported but only
// comparable to other distributed runs. Any worker failure fails the
// whole run (ErrWorkerLost for deaths and stalls); there is no
// mid-sweep recovery, by design.
func TrainDistributed(path string, opt Options, dopt DistributedOptions) (*Result, error) {
	if err := opt.fill(); err != nil {
		return nil, err
	}
	if opt.TopicWorkers > 1 {
		return nil, fmt.Errorf("topmine: TrainDistributed: TopicWorkers selects the in-process sampler; set DistributedOptions.Workers instead")
	}
	cf, err := OpenCorpusFile(path)
	if err != nil {
		return nil, err
	}
	// The handle's reference transfers to the Result on success; every
	// earlier exit must release it.
	c := cf.Corpus()
	var mined *MinedPhrases
	var segs []*SegmentedDoc
	if cf.CanReuseArtifacts(opt) {
		mined = cf.Mined()
		segs = cf.Segmented()
	}
	if mined == nil {
		mined = core.Mine(c, toCoreConfig(opt, nil))
	}
	if segs == nil {
		segs = core.Segment(c, mined, toCoreConfig(opt, nil))
	}
	docs := topicmodel.DocsFromSegmentation(c, segs)

	ln, err := net.Listen("tcp", dopt.Addr)
	if err != nil {
		cf.Close()
		return nil, fmt.Errorf("topmine: TrainDistributed: %w", err)
	}
	defer ln.Close()
	model, err := dtrain.Train(ln, dtrain.Job{
		CorpusPath:   path,
		Docs:         docs,
		VocabSize:    c.Vocab.Size(),
		Mined:        mined,
		SigAlpha:     opt.SigThreshold,
		MaxPhraseLen: opt.MaxPhraseLen,
		Model:        toModelOptions(opt, nil),
	}, dtrain.Options{
		Workers:        dopt.Workers,
		AcceptTimeout:  dopt.AcceptTimeout,
		BarrierTimeout: dopt.BarrierTimeout,
		SweepStats:     dopt.SweepStats,
		Logf:           dopt.Logf,
	})
	if err != nil {
		cf.Close()
		return nil, err
	}
	res := &Result{Corpus: c, Mined: mined, Segmented: segs, Model: model, Options: opt}
	res.Topics = model.Visualize(c, visualizeOptions(opt))
	res.closer = &resultCloser{cf: cf} // adopts the open handle's reference
	return res, nil
}

// ServeTrainingWorker serves one distributed training job as a worker:
// it dials the coordinator at addr (retrying until it is listening),
// rebuilds its assigned document range from the corpus file, and
// answers sweep barriers until training completes. It returns nil
// after a successful run and an error describing the cause when the
// run aborts (local failure, coordinator abort, lost connection).
func ServeTrainingWorker(addr string, wopt TrainingWorkerOptions) error {
	conn, err := dtrain.Dial(addr, wopt.DialTimeout)
	if err != nil {
		return err
	}
	return dtrain.RunWorker(conn, dtrain.WorkerOptions{
		CorpusPath:     wopt.CorpusPath,
		BarrierTimeout: wopt.BarrierTimeout,
		Logf:           wopt.Logf,
	})
}

// TrainModelWithSweepStats is TrainModel with a per-sweep timing hook.
// Only parallel training (opt.TopicWorkers > 1) reports — the serial
// sampler has no barrier to break down.
func TrainModelWithSweepStats(c *Corpus, segs []*SegmentedDoc, opt Options, stats func(SweepStats)) *Model {
	cfg := toCoreConfig(opt, nil)
	cfg.SweepStats = stats
	_, m := core.Train(c, segs, cfg)
	return m
}
